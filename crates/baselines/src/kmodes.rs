//! k-modes (Huang 1997): k-means adapted to categorical data with Hamming
//! dissimilarity and per-feature modes as cluster centers.

use categorical_data::{CategoricalTable, MISSING};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::{
    densify, hamming_distance, validate_input, BaselineError, CategoricalClusterer, Clustering,
};

/// Mode initialization strategy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum KModesInit {
    /// `k` distinct random objects (Huang's first method).
    #[default]
    RandomObjects,
    /// Huang's second, frequency-based method: modes built from the most
    /// frequent values, then snapped to their nearest objects.
    Frequency,
}

/// The k-modes clusterer.
///
/// # Example
///
/// ```
/// use categorical_data::synth::GeneratorConfig;
/// use mcdc_baselines::{CategoricalClusterer, KModes};
///
/// let data = GeneratorConfig::new("demo", 90, vec![3; 5], 3)
///     .noise(0.05)
///     .generate(1)
///     .dataset;
/// let result = KModes::new(42).cluster(data.table(), 3)?;
/// assert_eq!(result.k_found, 3);
/// # Ok::<(), mcdc_baselines::BaselineError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KModes {
    seed: u64,
    init: KModesInit,
    max_iterations: usize,
}

impl KModes {
    /// Creates a k-modes clusterer with the given `seed` and default
    /// settings (random-object init, 100-iteration cap).
    pub fn new(seed: u64) -> Self {
        KModes { seed, init: KModesInit::default(), max_iterations: 100 }
    }

    /// Sets the initialization strategy.
    pub fn with_init(mut self, init: KModesInit) -> Self {
        self.init = init;
        self
    }

    /// Caps the assign/update iterations.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn with_max_iterations(mut self, cap: usize) -> Self {
        assert!(cap > 0, "max_iterations must be positive");
        self.max_iterations = cap;
        self
    }

    fn initial_modes(&self, table: &CategoricalTable, k: usize) -> Vec<Vec<u32>> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        match self.init {
            KModesInit::RandomObjects => {
                let mut indices: Vec<usize> = (0..table.n_rows()).collect();
                indices.shuffle(&mut rng);
                indices.truncate(k);
                indices.iter().map(|&i| table.row(i).to_vec()).collect()
            }
            KModesInit::Frequency => frequency_modes(table, k),
        }
    }
}

/// Huang's frequency-based seeding: distribute the most frequent values of
/// every feature across the k modes, then replace each synthetic mode by its
/// nearest actual object to guarantee non-empty neighbourhoods.
fn frequency_modes(table: &CategoricalTable, k: usize) -> Vec<Vec<u32>> {
    let d = table.n_features();
    // Rank values per feature by frequency.
    let mut ranked: Vec<Vec<u32>> = Vec::with_capacity(d);
    for r in 0..d {
        let m = table.schema().domain(r).cardinality() as usize;
        let mut counts = vec![0u64; m];
        for v in table.column(r) {
            if v != MISSING {
                counts[v as usize] += 1;
            }
        }
        let mut order: Vec<u32> = (0..m as u32).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(counts[v as usize]));
        ranked.push(order);
    }
    // Synthetic mode j takes the (j mod m_r)-th most frequent value.
    let synthetic: Vec<Vec<u32>> =
        (0..k).map(|j| (0..d).map(|r| ranked[r][j % ranked[r].len()]).collect()).collect();
    // Snap to nearest distinct objects.
    let mut used = vec![false; table.n_rows()];
    synthetic
        .iter()
        .map(|mode| {
            let (mut best, mut best_dist) = (0usize, usize::MAX);
            for i in 0..table.n_rows() {
                if used[i] {
                    continue;
                }
                let dist = hamming_distance(table.row(i), mode);
                if dist < best_dist {
                    best_dist = dist;
                    best = i;
                }
            }
            used[best] = true;
            table.row(best).to_vec()
        })
        .collect()
}

/// Per-cluster, per-feature value counts for mode updates.
fn update_modes(table: &CategoricalTable, labels: &[usize], k: usize) -> Vec<Vec<u32>> {
    let d = table.n_features();
    let mut counts: Vec<Vec<Vec<u32>>> = (0..k)
        .map(|_| {
            (0..d).map(|r| vec![0u32; table.schema().domain(r).cardinality() as usize]).collect()
        })
        .collect();
    for (i, &l) in labels.iter().enumerate() {
        for (r, &v) in table.row(i).iter().enumerate() {
            if v != MISSING {
                counts[l][r][v as usize] += 1;
            }
        }
    }
    counts
        .iter()
        .map(|cluster| {
            cluster
                .iter()
                .map(|feature| {
                    feature
                        .iter()
                        .enumerate()
                        .max_by(|(ta, ca), (tb, cb)| ca.cmp(cb).then(tb.cmp(ta)))
                        .map_or(0, |(t, _)| t as u32)
                })
                .collect()
        })
        .collect()
}

impl CategoricalClusterer for KModes {
    fn name(&self) -> &'static str {
        "K-MODES"
    }

    fn cluster(&self, table: &CategoricalTable, k: usize) -> Result<Clustering, BaselineError> {
        validate_input(table, k)?;
        let n = table.n_rows();
        let mut modes = self.initial_modes(table, k);
        let mut labels = vec![usize::MAX; n];
        let mut iterations = 0;

        for _ in 0..self.max_iterations {
            iterations += 1;
            let mut changed = false;
            for i in 0..n {
                let row = table.row(i);
                let best = modes
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, mode)| hamming_distance(row, mode))
                    .map(|(l, _)| l)
                    .expect("k >= 1");
                if labels[i] != best {
                    labels[i] = best;
                    changed = true;
                }
            }
            // Re-seed any emptied cluster on the object farthest from its mode.
            let mut sizes = vec![0usize; k];
            for &l in &labels {
                sizes[l] += 1;
            }
            for l in 0..k {
                if sizes[l] > 0 {
                    continue;
                }
                let far = (0..n)
                    .filter(|&i| sizes[labels[i]] > 1)
                    .max_by_key(|&i| hamming_distance(table.row(i), &modes[labels[i]]));
                if let Some(i) = far {
                    sizes[labels[i]] -= 1;
                    labels[i] = l;
                    sizes[l] = 1;
                    changed = true;
                }
            }
            modes = update_modes(table, &labels, k);
            if !changed {
                break;
            }
        }

        let k_found = densify(&mut labels);
        if k_found < k {
            return Err(BaselineError::FailedToFormK { k, found: k_found });
        }
        Ok(Clustering { labels, k_found, iterations })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use categorical_data::synth::GeneratorConfig;
    use categorical_data::Dataset;

    fn separated(n: usize, k: usize, seed: u64) -> Dataset {
        GeneratorConfig::new("t", n, vec![4; 8], k).noise(0.05).generate(seed).dataset
    }

    #[test]
    fn recovers_separated_clusters() {
        let data = separated(240, 3, 1);
        let result = KModes::new(5).cluster(data.table(), 3).unwrap();
        let acc = cluster_eval::accuracy(data.labels(), &result.labels);
        assert!(acc > 0.9, "acc={acc}");
    }

    #[test]
    fn frequency_init_is_deterministic() {
        let data = separated(120, 2, 2);
        let km = KModes::new(0).with_init(KModesInit::Frequency);
        let a = km.cluster(data.table(), 2).unwrap();
        let b = km.cluster(data.table(), 2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn delivers_exactly_k_clusters() {
        let data = separated(60, 2, 3);
        for k in [2, 3, 5] {
            let result = KModes::new(1).cluster(data.table(), k).unwrap();
            assert_eq!(result.k_found, k);
        }
    }

    #[test]
    fn rejects_invalid_k() {
        let data = separated(10, 2, 4);
        assert!(matches!(
            KModes::new(0).cluster(data.table(), 0),
            Err(BaselineError::InvalidK { .. })
        ));
        assert!(matches!(
            KModes::new(0).cluster(data.table(), 11),
            Err(BaselineError::InvalidK { .. })
        ));
    }

    #[test]
    fn k_equals_n_is_all_singletons() {
        let data = separated(8, 2, 5);
        let result = KModes::new(2).cluster(data.table(), 8).unwrap();
        assert_eq!(result.k_found, 8);
    }
}
