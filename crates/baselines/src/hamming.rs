use categorical_data::MISSING;

/// Hamming distance between two code rows: the number of features on which
/// they differ. Missing values never match anything (including each other),
/// mirroring the paper's `Ψ_{F_r ≠ NULL}` treatment.
///
/// # Panics
///
/// Panics (in debug builds) if the rows have different arities.
///
/// # Example
///
/// ```
/// use mcdc_baselines::hamming_distance;
///
/// assert_eq!(hamming_distance(&[0, 1, 2], &[0, 1, 2]), 0);
/// assert_eq!(hamming_distance(&[0, 1, 2], &[0, 2, 1]), 2);
/// ```
pub fn hamming_distance(a: &[u32], b: &[u32]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).filter(|(&x, &y)| x != y || x == MISSING).count()
}

/// Jaccard similarity between the attribute-value sets of two rows, the
/// point similarity ROCK is built on: with `m` matching features out of `d`,
/// `|A ∩ B| / |A ∪ B| = m / (2d − m)`.
///
/// # Panics
///
/// Panics (in debug builds) if the rows have different arities.
///
/// # Example
///
/// ```
/// use mcdc_baselines::jaccard_similarity;
///
/// assert_eq!(jaccard_similarity(&[0, 1], &[0, 1]), 1.0);
/// assert_eq!(jaccard_similarity(&[0, 1], &[0, 2]), 1.0 / 3.0);
/// assert_eq!(jaccard_similarity(&[0, 1], &[1, 0]), 0.0);
/// ```
pub fn jaccard_similarity(a: &[u32], b: &[u32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let d = a.len();
    if d == 0 {
        return 0.0;
    }
    let matches = d - hamming_distance(a, b);
    matches as f64 / (2 * d - matches) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_rows_have_zero_distance() {
        assert_eq!(hamming_distance(&[5, 5], &[5, 5]), 0);
    }

    #[test]
    fn missing_never_matches() {
        assert_eq!(hamming_distance(&[MISSING, 1], &[MISSING, 1]), 1);
    }

    #[test]
    fn jaccard_of_disjoint_rows_is_zero() {
        assert_eq!(jaccard_similarity(&[0, 0, 0], &[1, 1, 1]), 0.0);
    }

    #[test]
    fn jaccard_formula_matches_set_definition() {
        // 3 features, 2 matches: |A∩B| = 2, |A∪B| = 4.
        assert!((jaccard_similarity(&[0, 1, 2], &[0, 1, 0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_rows_have_zero_jaccard() {
        assert_eq!(jaccard_similarity(&[], &[]), 0.0);
    }
}
