//! COOLCAT (Barbará, Li & Couto 2002): incremental entropy-based categorical
//! clustering — the representative of the entropy-based stream the paper's
//! related-work section discusses ([27]–[31]).
//!
//! Objects are placed one at a time into the cluster whose *expected entropy*
//! grows least. A sample-based bootstrap picks the k mutually most dissimilar
//! objects as cluster founders, and a re-clustering sweep reconsiders the
//! worst-fitting fraction of objects at the end, as in the original system.

use categorical_data::{CategoricalTable, MISSING};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::{
    densify, hamming_distance, validate_input, BaselineError, CategoricalClusterer, Clustering,
};

/// The COOLCAT clusterer.
///
/// # Example
///
/// ```
/// use categorical_data::synth::GeneratorConfig;
/// use mcdc_baselines::{CategoricalClusterer, Coolcat};
///
/// let data = GeneratorConfig::new("demo", 120, vec![3; 6], 2)
///     .noise(0.05)
///     .generate(1)
///     .dataset;
/// let result = Coolcat::new(3).cluster(data.table(), 2)?;
/// assert_eq!(result.labels.len(), 120);
/// # Ok::<(), mcdc_baselines::BaselineError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Coolcat {
    seed: u64,
    /// Bootstrap sample size for founder selection.
    sample_size: usize,
    /// Fraction of worst-fitting objects revisited per re-clustering sweep.
    refit_fraction: f64,
    /// Number of re-clustering sweeps.
    refit_sweeps: usize,
}

impl Coolcat {
    /// Creates a COOLCAT clusterer with the original system's shape:
    /// bootstrap sample of 100, 20% re-clustering over 2 sweeps.
    pub fn new(seed: u64) -> Self {
        Coolcat { seed, sample_size: 100, refit_fraction: 0.2, refit_sweeps: 2 }
    }

    /// Sets the bootstrap sample size.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn with_sample_size(mut self, size: usize) -> Self {
        assert!(size > 0, "sample size must be positive");
        self.sample_size = size;
        self
    }
}

/// Entropy bookkeeping for one cluster: per-feature value counts.
struct EntropyCluster {
    counts: Vec<Vec<u32>>,
    size: u32,
}

impl EntropyCluster {
    fn new(table: &CategoricalTable) -> Self {
        EntropyCluster {
            counts: (0..table.n_features())
                .map(|r| vec![0; table.schema().domain(r).cardinality() as usize])
                .collect(),
            size: 0,
        }
    }

    fn add(&mut self, row: &[u32]) {
        for (r, &v) in row.iter().enumerate() {
            if v != MISSING {
                self.counts[r][v as usize] += 1;
            }
        }
        self.size += 1;
    }

    fn remove(&mut self, row: &[u32]) {
        for (r, &v) in row.iter().enumerate() {
            if v != MISSING {
                self.counts[r][v as usize] -= 1;
            }
        }
        self.size -= 1;
    }

    /// Size-weighted entropy contribution `|C| · Σ_r H(F_r | C)`.
    fn weighted_entropy(&self) -> f64 {
        if self.size == 0 {
            return 0.0;
        }
        let n = self.size as f64;
        let mut h = 0.0;
        for feature in &self.counts {
            for &c in feature {
                if c > 0 {
                    let p = c as f64 / n;
                    h -= p * p.ln();
                }
            }
        }
        n * h
    }

    /// Entropy increase if `row` were added.
    fn entropy_delta(&mut self, row: &[u32]) -> f64 {
        let before = self.weighted_entropy();
        self.add(row);
        let after = self.weighted_entropy();
        self.remove(row);
        after - before
    }
}

impl CategoricalClusterer for Coolcat {
    fn name(&self) -> &'static str {
        "COOLCAT"
    }

    fn cluster(&self, table: &CategoricalTable, k: usize) -> Result<Clustering, BaselineError> {
        validate_input(table, k)?;
        let n = table.n_rows();

        // Bootstrap: sample, pick the k founders maximizing mutual Hamming
        // distance (greedy max-min, deterministic given the sample).
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let sample: Vec<usize> = order.iter().copied().take(self.sample_size.min(n)).collect();
        let mut founders = vec![sample[0]];
        while founders.len() < k {
            let next = sample
                .iter()
                .copied()
                .filter(|i| !founders.contains(i))
                .max_by_key(|&i| {
                    founders
                        .iter()
                        .map(|&f| hamming_distance(table.row(i), table.row(f)))
                        .min()
                        .unwrap_or(0)
                })
                .ok_or(BaselineError::InvalidK { k, n: sample.len() })?;
            founders.push(next);
        }

        let mut clusters: Vec<EntropyCluster> =
            (0..k).map(|_| EntropyCluster::new(table)).collect();
        let mut labels = vec![usize::MAX; n];
        for (l, &i) in founders.iter().enumerate() {
            clusters[l].add(table.row(i));
            labels[i] = l;
        }

        // Incremental placement in the shuffled order.
        for &i in &order {
            if labels[i] != usize::MAX {
                continue;
            }
            let row = table.row(i);
            let best = (0..k)
                .min_by(|&a, &b| {
                    clusters[a]
                        .entropy_delta(row)
                        .partial_cmp(&clusters[b].entropy_delta(row))
                        .expect("entropies are finite")
                })
                .expect("k >= 1");
            clusters[best].add(row);
            labels[i] = best;
        }

        // Re-clustering sweeps: revisit the worst-fitting fraction.
        let refit_count = ((n as f64) * self.refit_fraction).round() as usize;
        let mut iterations = 1;
        for _ in 0..self.refit_sweeps {
            iterations += 1;
            // Fitness of an object: probability mass of its values in its
            // own cluster (low = badly placed).
            let mut fitness: Vec<(usize, f64)> = (0..n)
                .map(|i| {
                    let l = labels[i];
                    let c = &clusters[l];
                    let mass: f64 = table
                        .row(i)
                        .iter()
                        .enumerate()
                        .map(|(r, &v)| {
                            if v == MISSING || c.size == 0 {
                                0.0
                            } else {
                                c.counts[r][v as usize] as f64 / c.size as f64
                            }
                        })
                        .sum();
                    (i, mass)
                })
                .collect();
            fitness.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite fitness"));
            let mut moved = false;
            for &(i, _) in fitness.iter().take(refit_count) {
                let row = table.row(i);
                let current = labels[i];
                if clusters[current].size <= 1 {
                    continue;
                }
                clusters[current].remove(row);
                let best = (0..k)
                    .min_by(|&a, &b| {
                        clusters[a]
                            .entropy_delta(row)
                            .partial_cmp(&clusters[b].entropy_delta(row))
                            .expect("entropies are finite")
                    })
                    .expect("k >= 1");
                clusters[best].add(row);
                if best != current {
                    labels[i] = best;
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }

        let k_found = densify(&mut labels);
        if k_found < k {
            return Err(BaselineError::FailedToFormK { k, found: k_found });
        }
        Ok(Clustering { labels, k_found, iterations })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use categorical_data::synth::GeneratorConfig;
    use categorical_data::Dataset;

    fn separated(n: usize, k: usize, seed: u64) -> Dataset {
        GeneratorConfig::new("t", n, vec![4; 8], k).noise(0.05).generate(seed).dataset
    }

    #[test]
    fn recovers_separated_clusters() {
        let data = separated(240, 3, 1);
        let result = Coolcat::new(3).cluster(data.table(), 3).unwrap();
        let acc = cluster_eval::accuracy(data.labels(), &result.labels);
        assert!(acc > 0.85, "acc={acc}");
    }

    #[test]
    fn entropy_delta_is_nonnegative_for_new_values() {
        let data = separated(50, 2, 2);
        let mut c = EntropyCluster::new(data.table());
        c.add(data.table().row(0));
        // Adding any object can only increase (or keep) weighted entropy.
        let delta = c.entropy_delta(data.table().row(1));
        assert!(delta >= -1e-12, "delta={delta}");
    }

    #[test]
    fn deterministic_per_seed() {
        let data = separated(100, 2, 3);
        let c = Coolcat::new(9);
        assert_eq!(c.cluster(data.table(), 2).unwrap(), c.cluster(data.table(), 2).unwrap());
    }

    #[test]
    fn rejects_invalid_inputs() {
        let data = separated(10, 2, 4);
        assert!(Coolcat::new(0).cluster(data.table(), 0).is_err());
        assert!(Coolcat::new(0).cluster(data.table(), 11).is_err());
    }

    #[test]
    fn founder_count_equals_k() {
        let data = separated(60, 2, 5);
        for k in [2, 4, 6] {
            let result = Coolcat::new(1).cluster(data.table(), k).unwrap();
            assert_eq!(result.k_found, k);
        }
    }
}
