//! FKMAWCW (Oskouei, Balafar & Motamed 2021): categorical fuzzy k-modes with
//! automated per-cluster attribute weights and cluster weights.
//!
//! Minimizes
//! `J = Σ_j z_j^p Σ_i u_ij^m Σ_r w_rj^q δ(x_ir, Z_jr)`
//! by alternating closed-form multiplicative updates of the fuzzy
//! memberships `u`, the cluster modes `Z`, the per-cluster attribute weights
//! `w`, and the cluster weights `z`. Re-implemented from the published
//! update-rule structure (the reference implementation is closed source —
//! DESIGN.md §3); the paper-reported failure mode (collapsing below `k`
//! clusters on some data sets, scored 0.000 in Table III) is preserved via
//! [`BaselineError::FailedToFormK`].

use categorical_data::{CategoricalTable, MISSING};

use crate::{densify, validate_input, BaselineError, CategoricalClusterer, Clustering};

/// Guard against division by zero in the multiplicative updates.
const EPS: f64 = 1e-10;

/// The FKMAWCW fuzzy clusterer.
///
/// # Example
///
/// ```
/// use categorical_data::synth::GeneratorConfig;
/// use mcdc_baselines::{CategoricalClusterer, Fkmawcw};
///
/// let data = GeneratorConfig::new("demo", 90, vec![3; 5], 3)
///     .noise(0.05)
///     .generate(1)
///     .dataset;
/// let result = Fkmawcw::new(4).cluster(data.table(), 3)?;
/// assert_eq!(result.labels.len(), 90);
/// # Ok::<(), mcdc_baselines::BaselineError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Fkmawcw {
    seed: u64,
    /// Membership fuzzifier `m` (paper default 2).
    fuzzifier: f64,
    /// Attribute-weight exponent `q`.
    attribute_exponent: f64,
    /// Cluster-weight exponent `p`.
    cluster_exponent: f64,
    max_iterations: usize,
}

impl Fkmawcw {
    /// Creates a clusterer with a crisp fuzzifier (`m = 1.3`, following the
    /// fuzzy-k-modes lineage of Huang & Ng where `α = 1.1`; `m = 2` makes
    /// close categorical modes collapse onto the global majority row), the
    /// source paper's attribute exponent (`q = 2`), and a softened
    /// cluster-weight exponent (`p = 1.5`): the mass prior enters as
    /// `z^(p−1) = √z`, keeping the imbalance-handling benefit while damping
    /// rich-get-richer collapse on low-cardinality features.
    pub fn new(seed: u64) -> Self {
        Fkmawcw {
            seed,
            fuzzifier: 1.3,
            attribute_exponent: 2.0,
            cluster_exponent: 1.5,
            max_iterations: 100,
        }
    }

    /// Sets the membership fuzzifier `m > 1`.
    ///
    /// # Panics
    ///
    /// Panics if `m <= 1`.
    pub fn with_fuzzifier(mut self, m: f64) -> Self {
        assert!(m > 1.0, "fuzzifier must exceed 1");
        self.fuzzifier = m;
        self
    }

    /// Caps the update iterations.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn with_max_iterations(mut self, cap: usize) -> Self {
        assert!(cap > 0, "max_iterations must be positive");
        self.max_iterations = cap;
        self
    }
}

impl CategoricalClusterer for Fkmawcw {
    fn name(&self) -> &'static str {
        "FKMAWCW"
    }

    fn cluster(&self, table: &CategoricalTable, k: usize) -> Result<Clustering, BaselineError> {
        validate_input(table, k)?;
        let n = table.n_rows();
        let d = table.n_features();
        let m = self.fuzzifier;
        let q = self.attribute_exponent;
        let p = self.cluster_exponent;

        // Initialize modes on spread-out objects (max-min seeding).
        let mut modes: Vec<Vec<u32>> = crate::spread_seeds(table, k, self.seed)
            .iter()
            .map(|&i| table.row(i).to_vec())
            .collect();

        let mut attr_w = vec![vec![1.0 / d as f64; d]; k];
        let mut cluster_w = vec![1.0 / k as f64; k];
        let mut memberships = vec![vec![0.0f64; k]; n];
        let mut labels = vec![usize::MAX; n];
        let mut iterations = 0;

        // Weight learning starts only after the memberships have had a few
        // rounds to find real structure: with q = 2 the weights enter the
        // distance squared, and updating them from the near-random first
        // partition locks the iteration into that partition (weights peak on
        // whatever quirk features the seeds happened to disagree on).
        const WARM_START: usize = 3;
        for _ in 0..self.max_iterations {
            iterations += 1;

            // Weighted dissimilarity: the cluster weight acts as a learned
            // prior (mass share), so D_ij = Σ_r w_rj^q δ(x_ir, Z_jr) / z_j^(p−1)
            // — larger clusters are proportionally more attractive, which is
            // what lets the method cope with imbalanced clusters (its selling
            // point) and also what can collapse it below k clusters on heavily
            // overlapped data (the 0.000 failure rows of Table III).
            // Memberships: u_ij ∝ D_ij^(−1/(m−1)).
            let mut changed = false;
            for i in 0..n {
                let row = table.row(i);
                let mut dist = vec![0.0f64; k];
                for (j, mode) in modes.iter().enumerate() {
                    let base: f64 = row
                        .iter()
                        .zip(mode)
                        .zip(&attr_w[j])
                        .map(|((&a, &b), &w)| if a == b && a != MISSING { 0.0 } else { w.powf(q) })
                        .sum();
                    dist[j] = base / (cluster_w[j] + EPS).powf(p - 1.0) + EPS;
                }
                let mut total = 0.0;
                for j in 0..k {
                    memberships[i][j] = dist[j].powf(-1.0 / (m - 1.0));
                    total += memberships[i][j];
                }
                let mut best = 0usize;
                for j in 0..k {
                    memberships[i][j] /= total;
                    if memberships[i][j] > memberships[i][best] {
                        best = j;
                    }
                }
                if labels[i] != best {
                    labels[i] = best;
                    changed = true;
                }
            }

            // Modes: per cluster/feature the value maximizing Σ_i u_ij^m.
            for (j, mode) in modes.iter_mut().enumerate() {
                for r in 0..d {
                    let cardinality = table.schema().domain(r).cardinality() as usize;
                    let mut scores = vec![0.0f64; cardinality];
                    for i in 0..n {
                        let v = table.value(i, r);
                        if v != MISSING {
                            scores[v as usize] += memberships[i][j].powf(m);
                        }
                    }
                    mode[r] = scores
                        .iter()
                        .enumerate()
                        .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite"))
                        .map_or(0, |(t, _)| t as u32);
                }
            }

            if iterations <= WARM_START {
                if !changed {
                    break;
                }
                continue;
            }

            // Attribute weights: w_rj ∝ (Σ_i u_ij^m δ(x_ir, Z_jr))^(−1/(q−1)).
            // Zero-dispersion features get zero weight (Huang et al. 2005's
            // W-k-means convention): a feature on which the whole cluster
            // already matches its mode separates nothing, and the inverse
            // power would otherwise hand it all the weight mass.
            for (j, weights) in attr_w.iter_mut().enumerate() {
                let mut cost = vec![0.0f64; d];
                for i in 0..n {
                    let u_m = memberships[i][j].powf(m);
                    let row = table.row(i);
                    for (r, slot) in cost.iter_mut().enumerate() {
                        if row[r] != modes[j][r] || row[r] == MISSING {
                            *slot += u_m;
                        }
                    }
                }
                let floor = cost.iter().copied().fold(0.0f64, f64::max) * 1e-9;
                let mut total = 0.0;
                for (r, slot) in weights.iter_mut().enumerate() {
                    *slot = if cost[r] <= floor { 0.0 } else { cost[r].powf(-1.0 / (q - 1.0)) };
                    total += *slot;
                }
                if total <= EPS {
                    *weights = vec![1.0 / d as f64; d];
                } else {
                    for slot in weights.iter_mut() {
                        *slot /= total;
                    }
                }
            }

            // Cluster weights: normalized fuzzy mass z_j ∝ Σ_i u_ij^m.
            let mut total_z = 0.0;
            for (j, z) in cluster_w.iter_mut().enumerate() {
                let mass: f64 = (0..n).map(|i| memberships[i][j].powf(m)).sum();
                *z = mass + EPS;
                total_z += *z;
            }
            for z in cluster_w.iter_mut() {
                *z /= total_z;
            }

            if !changed {
                break;
            }
        }

        let k_found = densify(&mut labels);
        if k_found < k {
            // The failure mode the paper scores as 0.000.
            return Err(BaselineError::FailedToFormK { k, found: k_found });
        }
        Ok(Clustering { labels, k_found, iterations })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use categorical_data::synth::GeneratorConfig;
    use categorical_data::Dataset;

    fn separated(n: usize, k: usize, seed: u64) -> Dataset {
        GeneratorConfig::new("t", n, vec![4; 8], k).noise(0.05).generate(seed).dataset
    }

    #[test]
    fn recovers_separated_clusters() {
        let data = separated(240, 3, 1);
        let result = Fkmawcw::new(3).cluster(data.table(), 3).unwrap();
        let acc = cluster_eval::accuracy(data.labels(), &result.labels);
        assert!(acc > 0.85, "acc={acc}");
    }

    #[test]
    fn memberships_induce_full_partition() {
        let data = separated(100, 2, 2);
        let result = Fkmawcw::new(1).cluster(data.table(), 2).unwrap();
        assert_eq!(result.labels.len(), 100);
        assert!(result.labels.iter().all(|&l| l < 2));
    }

    #[test]
    fn deterministic_per_seed() {
        let data = separated(80, 2, 3);
        let f = Fkmawcw::new(7);
        assert_eq!(f.cluster(data.table(), 2).unwrap(), f.cluster(data.table(), 2).unwrap());
    }

    #[test]
    fn rejects_invalid_k() {
        let data = separated(10, 2, 4);
        assert!(Fkmawcw::new(0).cluster(data.table(), 0).is_err());
    }

    #[test]
    #[should_panic(expected = "fuzzifier")]
    fn rejects_bad_fuzzifier() {
        let _ = Fkmawcw::new(0).with_fuzzifier(1.0);
    }
}
