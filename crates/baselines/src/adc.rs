//! ADC-style clustering (Zhang & Cheung 2022): graph-based dissimilarity for
//! any-type-attributed data, specialized here to categorical features.
//!
//! Attribute values become nodes of a co-occurrence graph; the dissimilarity
//! between two values of one feature is the divergence of their
//! *neighbourhood distributions* — how differently they connect to the
//! values of the other features — measured by the Jensen–Shannon divergence
//! and averaged over all coupled features (unweighted, unlike GUDMM's
//! NMI-weighted aggregation), plus an in-feature occurrence-frequency gap.
//! The learned metric drives the medoid-value k-modes of [`metric_kmodes`].
//! Re-implemented from the published construction (DESIGN.md §3).

use categorical_data::stats::{FrequencyTable, JointDistribution};
use categorical_data::CategoricalTable;

use crate::{
    metric_kmodes, validate_input, BaselineError, CategoricalClusterer, Clustering,
    ValueDistanceTable,
};

/// The ADC clusterer.
///
/// # Example
///
/// ```
/// use categorical_data::synth::GeneratorConfig;
/// use mcdc_baselines::{Adc, CategoricalClusterer};
///
/// let data = GeneratorConfig::new("demo", 90, vec![3; 5], 3)
///     .noise(0.05)
///     .generate(1)
///     .dataset;
/// let result = Adc::new(4).cluster(data.table(), 3)?;
/// assert_eq!(result.labels.len(), 90);
/// # Ok::<(), mcdc_baselines::BaselineError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Adc {
    seed: u64,
    max_iterations: usize,
}

impl Adc {
    /// Creates an ADC clusterer (metric deterministic; seed drives k-modes
    /// initialization).
    pub fn new(seed: u64) -> Self {
        Adc { seed, max_iterations: 100 }
    }

    /// Caps the k-modes iterations.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn with_max_iterations(mut self, cap: usize) -> Self {
        assert!(cap > 0, "max_iterations must be positive");
        self.max_iterations = cap;
        self
    }

    /// Builds the graph-based value-distance metric for `table`.
    pub fn build_metric(table: &CategoricalTable) -> ValueDistanceTable {
        let d = table.n_features();
        let frequency = FrequencyTable::from_table(table);
        let mut tables = Vec::with_capacity(d);
        let mut cardinalities = Vec::with_capacity(d);

        for r in 0..d {
            let m = table.schema().domain(r).cardinality() as usize;
            let mut matrix = vec![0.0f64; m * m];
            // Aspect count: the in-feature frequency gap plus d−1 couplings.
            let aspects = d as f64;
            // In-feature aspect: occurrence-frequency gap.
            for a in 0..m {
                for b in (a + 1)..m {
                    let gap =
                        (frequency.frequency(r, a as u32) - frequency.frequency(r, b as u32)).abs();
                    // Distinct values are at least frequency-gap apart; the
                    // graph aspects add the structural part.
                    let base = 0.5 * (1.0 + gap);
                    matrix[a * m + b] += base;
                    matrix[b * m + a] += base;
                }
            }
            // Graph aspects: neighbourhood-distribution divergence per
            // coupled feature.
            for s in 0..d {
                if s == r {
                    continue;
                }
                let joint = JointDistribution::from_table(table, r, s);
                let conditionals: Vec<Vec<f64>> =
                    (0..m as u32).map(|a| joint.conditional(a)).collect();
                for a in 0..m {
                    for b in (a + 1)..m {
                        let js = jensen_shannon(&conditionals[a], &conditionals[b]);
                        matrix[a * m + b] += js;
                        matrix[b * m + a] += js;
                    }
                }
            }
            for v in matrix.iter_mut() {
                *v /= aspects;
            }
            tables.push(matrix);
            cardinalities.push(m);
        }
        ValueDistanceTable::new(tables, cardinalities)
    }
}

/// Jensen–Shannon divergence (natural log, normalized by `ln 2` into
/// `[0, 1]`) between two discrete distributions.
fn jensen_shannon(p: &[f64], q: &[f64]) -> f64 {
    debug_assert_eq!(p.len(), q.len());
    let kl = |x: &[f64], y: &[f64]| -> f64 {
        x.iter()
            .zip(y)
            .filter(|(&a, _)| a > 0.0)
            .map(|(&a, &b)| a * (a / b.max(f64::MIN_POSITIVE)).ln())
            .sum()
    };
    let mid: Vec<f64> = p.iter().zip(q).map(|(&a, &b)| 0.5 * (a + b)).collect();
    (0.5 * kl(p, &mid) + 0.5 * kl(q, &mid)) / std::f64::consts::LN_2
}

impl CategoricalClusterer for Adc {
    fn name(&self) -> &'static str {
        "ADC"
    }

    fn cluster(&self, table: &CategoricalTable, k: usize) -> Result<Clustering, BaselineError> {
        validate_input(table, k)?;
        let metric = Self::build_metric(table);
        metric_kmodes(table, &metric, k, self.seed, self.max_iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use categorical_data::synth::GeneratorConfig;
    use categorical_data::Dataset;

    fn separated(n: usize, k: usize, seed: u64) -> Dataset {
        GeneratorConfig::new("t", n, vec![4; 8], k).noise(0.05).generate(seed).dataset
    }

    #[test]
    fn js_divergence_bounds() {
        assert_eq!(jensen_shannon(&[1.0, 0.0], &[1.0, 0.0]), 0.0);
        let max = jensen_shannon(&[1.0, 0.0], &[0.0, 1.0]);
        assert!((max - 1.0).abs() < 1e-12, "max={max}");
    }

    #[test]
    fn metric_is_bounded_and_symmetric() {
        let data = separated(120, 2, 1);
        let metric = Adc::build_metric(data.table());
        for r in 0..data.n_features() {
            let m = data.table().schema().domain(r).cardinality();
            for a in 0..m {
                assert_eq!(metric.distance(r, a, a), 0.0);
                for b in 0..m {
                    let ab = metric.distance(r, a, b);
                    assert!((ab - metric.distance(r, b, a)).abs() < 1e-12);
                    assert!((0.0..=1.0).contains(&ab), "d={ab}");
                }
            }
        }
    }

    #[test]
    fn recovers_separated_clusters() {
        let data = separated(200, 3, 2);
        let result = Adc::new(5).cluster(data.table(), 3).unwrap();
        let acc = cluster_eval::accuracy(data.labels(), &result.labels);
        assert!(acc > 0.85, "acc={acc}");
    }

    #[test]
    fn deterministic_per_seed() {
        let data = separated(80, 2, 3);
        let adc = Adc::new(9);
        assert_eq!(adc.cluster(data.table(), 2).unwrap(), adc.cluster(data.table(), 2).unwrap());
    }
}
