//! Baseline categorical clustering algorithms compared against MCDC in the
//! paper's Table III.
//!
//! All from-scratch re-implementations (see `DESIGN.md` §3 for fidelity
//! notes on the closed-source counterparts):
//!
//! * [`KModes`] — Huang (1997) partitional k-modes;
//! * [`Rock`] — Guha et al. (2000) link-based agglomerative clustering;
//! * [`Wocil`] — Jia & Cheung (2017) subspace clustering with attribute
//!   weighting and a deterministic initialization;
//! * [`Gudmm`] — Mousavi & Sehhati (2023) generalized multi-aspect
//!   mutual-information distance metric;
//! * [`Fkmawcw`] — Oskouei et al. (2021) fuzzy k-modes with automated
//!   attribute- and cluster-weight learning;
//! * [`Adc`] — Zhang & Cheung (2022) graph-based dissimilarity clustering;
//! * [`Linkage`] — classic single/complete/average agglomerative linkage;
//! * [`Coolcat`] — COOLCAT, the entropy-based incremental clusterer
//!   representing the related-work entropy stream.
//!
//! Every algorithm implements [`CategoricalClusterer`], so the experiment
//! harness (and the `MCDC+X` enhancement pattern) can treat them uniformly.
//!
//! # Example
//!
//! ```
//! use categorical_data::synth::GeneratorConfig;
//! use mcdc_baselines::{CategoricalClusterer, KModes};
//!
//! let data = GeneratorConfig::new("demo", 150, vec![4; 6], 3)
//!     .noise(0.05)
//!     .generate(3)
//!     .dataset;
//! let clustering = KModes::new(7).cluster(data.table(), 3)?;
//! assert_eq!(clustering.labels.len(), 150);
//! # Ok::<(), mcdc_baselines::BaselineError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// The clustering inner loops walk an index across several parallel
// structures (labels, profiles, and table rows); the iterator rewrite the
// lint suggests would zip three sources and obscure the access pattern.
#![allow(clippy::needless_range_loop)]

mod adc;
mod coolcat;
mod error;
mod fkmawcw;
mod gudmm;
mod hamming;
mod hierarchical;
mod kmodes;
mod rock;
mod value_metric;
mod wocil;

pub use adc::Adc;
pub use coolcat::Coolcat;
pub use error::BaselineError;
pub use fkmawcw::Fkmawcw;
pub use gudmm::Gudmm;
pub use hamming::{hamming_distance, jaccard_similarity};
pub use hierarchical::{Linkage, LinkageMethod};
pub use kmodes::{KModes, KModesInit};
pub use rock::Rock;
pub use value_metric::{metric_kmodes, ValueDistanceTable};
pub use wocil::Wocil;

use categorical_data::CategoricalTable;

/// A hard partition produced by a baseline clusterer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// Cluster label per object, dense `0..k_found`.
    pub labels: Vec<usize>,
    /// Number of clusters actually formed.
    pub k_found: usize,
    /// Iterations (or merge steps) the algorithm used.
    pub iterations: usize,
}

/// Common interface over every baseline algorithm, letting the experiment
/// harness and the `MCDC+X` enhancement pattern swap clusterers freely.
pub trait CategoricalClusterer {
    /// Human-readable algorithm name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Partitions `table` into `k` clusters.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::EmptyInput`] / [`BaselineError::InvalidK`]
    /// for invalid shapes, and [`BaselineError::FailedToFormK`] when the
    /// algorithm cannot deliver `k` non-empty clusters (the failure mode
    /// Table III scores as 0.000).
    fn cluster(&self, table: &CategoricalTable, k: usize) -> Result<Clustering, BaselineError>;
}

/// Validates common input constraints; shared by the implementations.
pub(crate) fn validate_input(table: &CategoricalTable, k: usize) -> Result<(), BaselineError> {
    if table.n_rows() == 0 {
        return Err(BaselineError::EmptyInput);
    }
    if k == 0 || k > table.n_rows() {
        return Err(BaselineError::InvalidK { k, n: table.n_rows() });
    }
    Ok(())
}

/// Densifies arbitrary labels to `0..k` in first-appearance order and
/// returns the distinct count.
pub(crate) fn densify(labels: &mut [usize]) -> usize {
    let mut remap = std::collections::HashMap::new();
    for label in labels.iter_mut() {
        let next = remap.len();
        *label = *remap.entry(*label).or_insert(next);
    }
    remap.len()
}

/// Seeds `k` initial centers with a max-min spread: the first is a seeded
/// random pick, each further seed maximizes its minimum Hamming distance to
/// the chosen set. Keeps randomized k-modes-family initializations from
/// planting two seeds inside one tight cluster.
pub(crate) fn spread_seeds(table: &CategoricalTable, k: usize, seed: u64) -> Vec<usize> {
    use rand::Rng;
    use rand::SeedableRng;
    let n = table.n_rows();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut seeds = Vec::with_capacity(k);
    seeds.push(rng.gen_range(0..n));
    let mut min_dist: Vec<usize> =
        (0..n).map(|i| hamming_distance(table.row(i), table.row(seeds[0]))).collect();
    while seeds.len() < k {
        // Break distance ties randomly so repeated rows don't bias low indices.
        let best = (0..n)
            .filter(|i| !seeds.contains(i))
            .max_by_key(|&i| (min_dist[i], rng.gen_range(0..n)))
            .expect("k <= n leaves candidates");
        seeds.push(best);
        for i in 0..n {
            min_dist[i] = min_dist[i].min(hamming_distance(table.row(i), table.row(best)));
        }
    }
    seeds
}
