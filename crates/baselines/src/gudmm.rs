//! GUDMM-style clustering (Mousavi & Sehhati 2023): a generalized
//! multi-aspect distance metric for categorical values built from mutual
//! information between feature pairs.
//!
//! For feature `r`, the distance between two of its values `a, b` combines
//! every *coupled* feature `s ≠ r`: the total-variation distance between the
//! conditional distributions `p(F_s | F_r = a)` and `p(F_s | F_r = b)`,
//! weighted by the normalized mutual information `NMI(r, s)` (strongly
//! coupled features speak with more authority), plus a direct
//! value-mismatch term. The learned per-value metric then drives the
//! medoid-value k-modes of [`metric_kmodes`]. Re-implemented from the
//! published construction (DESIGN.md §3).

use categorical_data::stats::JointDistribution;
use categorical_data::CategoricalTable;

use crate::{
    metric_kmodes, validate_input, BaselineError, CategoricalClusterer, Clustering,
    ValueDistanceTable,
};

/// The GUDMM clusterer.
///
/// # Example
///
/// ```
/// use categorical_data::synth::GeneratorConfig;
/// use mcdc_baselines::{CategoricalClusterer, Gudmm};
///
/// let data = GeneratorConfig::new("demo", 90, vec![3; 5], 3)
///     .noise(0.05)
///     .generate(1)
///     .dataset;
/// let result = Gudmm::new(4).cluster(data.table(), 3)?;
/// assert_eq!(result.labels.len(), 90);
/// # Ok::<(), mcdc_baselines::BaselineError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gudmm {
    seed: u64,
    max_iterations: usize,
}

impl Gudmm {
    /// Creates a GUDMM clusterer (the metric itself is deterministic; the
    /// seed drives the k-modes initialization).
    pub fn new(seed: u64) -> Self {
        Gudmm { seed, max_iterations: 100 }
    }

    /// Caps the k-modes iterations.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn with_max_iterations(mut self, cap: usize) -> Self {
        assert!(cap > 0, "max_iterations must be positive");
        self.max_iterations = cap;
        self
    }

    /// Builds the multi-aspect value-distance metric for `table`.
    pub fn build_metric(table: &CategoricalTable) -> ValueDistanceTable {
        let d = table.n_features();
        let mut tables = Vec::with_capacity(d);
        let mut cardinalities = Vec::with_capacity(d);

        // Pairwise coupling strengths and conditionals.
        for r in 0..d {
            let m = table.schema().domain(r).cardinality() as usize;
            let mut matrix = vec![0.0f64; m * m];
            let mut weight_total = 0.0;
            // Direct aspect: plain mismatch carries unit weight.
            let direct_weight = 1.0;
            weight_total += direct_weight;
            for a in 0..m {
                for b in 0..m {
                    if a != b {
                        matrix[a * m + b] += direct_weight;
                    }
                }
            }
            // Coupled aspects.
            for s in 0..d {
                if s == r {
                    continue;
                }
                let joint = JointDistribution::from_table(table, r, s);
                let coupling = joint.normalized_mutual_information();
                if coupling <= f64::EPSILON {
                    continue;
                }
                weight_total += coupling;
                let conditionals: Vec<Vec<f64>> =
                    (0..m as u32).map(|a| joint.conditional(a)).collect();
                for a in 0..m {
                    for b in (a + 1)..m {
                        let tv = total_variation(&conditionals[a], &conditionals[b]);
                        matrix[a * m + b] += coupling * tv;
                        matrix[b * m + a] += coupling * tv;
                    }
                }
            }
            // Normalize into [0, 1].
            for v in matrix.iter_mut() {
                *v /= weight_total;
            }
            tables.push(matrix);
            cardinalities.push(m);
        }
        ValueDistanceTable::new(tables, cardinalities)
    }
}

/// Total-variation distance `½ Σ |p − q|` between two discrete distributions.
fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

impl CategoricalClusterer for Gudmm {
    fn name(&self) -> &'static str {
        "GUDMM"
    }

    fn cluster(&self, table: &CategoricalTable, k: usize) -> Result<Clustering, BaselineError> {
        validate_input(table, k)?;
        let metric = Self::build_metric(table);
        metric_kmodes(table, &metric, k, self.seed, self.max_iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use categorical_data::synth::GeneratorConfig;
    use categorical_data::{Dataset, Schema};

    fn separated(n: usize, k: usize, seed: u64) -> Dataset {
        GeneratorConfig::new("t", n, vec![4; 8], k).noise(0.05).generate(seed).dataset
    }

    #[test]
    fn metric_is_zero_diagonal_and_symmetric() {
        let data = separated(120, 2, 1);
        let metric = Gudmm::build_metric(data.table());
        for r in 0..data.n_features() {
            let m = data.table().schema().domain(r).cardinality();
            for a in 0..m {
                assert_eq!(metric.distance(r, a, a), 0.0);
                for b in 0..m {
                    let ab = metric.distance(r, a, b);
                    assert!((ab - metric.distance(r, b, a)).abs() < 1e-12);
                    assert!((0.0..=1.0).contains(&ab));
                }
            }
        }
    }

    #[test]
    fn coupled_values_are_closer_than_uncoupled() {
        // Feature 0 has 3 values; values 0 and 1 always co-occur with the
        // same value of feature 1, value 2 with a different one: d(0,1) must
        // be smaller than d(0,2).
        let mut t = CategoricalTable::new(Schema::uniform(2, 3));
        for _ in 0..10 {
            t.push_row(&[0, 0]).unwrap();
            t.push_row(&[1, 0]).unwrap();
            t.push_row(&[2, 1]).unwrap();
        }
        let metric = Gudmm::build_metric(&t);
        assert!(metric.distance(0, 0, 1) < metric.distance(0, 0, 2));
    }

    #[test]
    fn recovers_separated_clusters() {
        let data = separated(200, 3, 2);
        let result = Gudmm::new(5).cluster(data.table(), 3).unwrap();
        let acc = cluster_eval::accuracy(data.labels(), &result.labels);
        assert!(acc > 0.85, "acc={acc}");
    }

    #[test]
    fn deterministic_per_seed() {
        let data = separated(80, 2, 3);
        let g = Gudmm::new(9);
        assert_eq!(g.cluster(data.table(), 2).unwrap(), g.cluster(data.table(), 2).unwrap());
    }
}
