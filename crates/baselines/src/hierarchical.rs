//! Classic agglomerative linkage clustering (single / complete / average)
//! over Hamming distances — the conventional hierarchical substrate the
//! paper's introduction discusses and the efficiency experiments compare
//! against (hierarchical methods are the laborious O(n²·…) baseline MGCPL
//! is meant to replace).
//!
//! Uses the Lance–Williams update over a dense distance matrix, so memory is
//! O(sample²); large inputs are clustered on a seeded sample and remaining
//! objects are attached to their nearest cluster exemplar, like ROCK.

use categorical_data::CategoricalTable;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::{
    densify, hamming_distance, validate_input, BaselineError, CategoricalClusterer, Clustering,
};

/// Which linkage rule merges clusters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum LinkageMethod {
    /// Minimum pairwise distance between members.
    Single,
    /// Maximum pairwise distance between members.
    Complete,
    /// Size-weighted mean pairwise distance (UPGMA).
    #[default]
    Average,
}

impl LinkageMethod {
    fn update(&self, d_ak: f64, d_bk: f64, na: usize, nb: usize) -> f64 {
        match self {
            LinkageMethod::Single => d_ak.min(d_bk),
            LinkageMethod::Complete => d_ak.max(d_bk),
            LinkageMethod::Average => (na as f64 * d_ak + nb as f64 * d_bk) / (na + nb) as f64,
        }
    }
}

/// The agglomerative linkage clusterer.
///
/// # Example
///
/// ```
/// use categorical_data::synth::GeneratorConfig;
/// use mcdc_baselines::{CategoricalClusterer, Linkage, LinkageMethod};
///
/// let data = GeneratorConfig::new("demo", 60, vec![4; 6], 2)
///     .noise(0.05)
///     .generate(1)
///     .dataset;
/// let result = Linkage::new(LinkageMethod::Average).cluster(data.table(), 2)?;
/// assert_eq!(result.k_found, 2);
/// # Ok::<(), mcdc_baselines::BaselineError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Linkage {
    method: LinkageMethod,
    sample_size: usize,
    seed: u64,
}

impl Linkage {
    /// Creates a linkage clusterer with a 2000-object sampling cap.
    pub fn new(method: LinkageMethod) -> Self {
        Linkage { method, sample_size: 2000, seed: 0 }
    }

    /// Sets the sampling cap for large inputs.
    ///
    /// # Panics
    ///
    /// Panics if `cap < 2`.
    pub fn with_sample_size(mut self, cap: usize) -> Self {
        assert!(cap >= 2, "sample size must be at least 2");
        self.sample_size = cap;
        self
    }

    /// Seeds the sampling step.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl CategoricalClusterer for Linkage {
    fn name(&self) -> &'static str {
        match self.method {
            LinkageMethod::Single => "SINGLE-LINK",
            LinkageMethod::Complete => "COMPLETE-LINK",
            LinkageMethod::Average => "AVERAGE-LINK",
        }
    }

    fn cluster(&self, table: &CategoricalTable, k: usize) -> Result<Clustering, BaselineError> {
        validate_input(table, k)?;
        let n = table.n_rows();

        let (sample, sampled): (Vec<usize>, bool) = if n <= self.sample_size {
            ((0..n).collect(), false)
        } else {
            let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
            let mut indices: Vec<usize> = (0..n).collect();
            indices.shuffle(&mut rng);
            indices.truncate(self.sample_size);
            (indices, true)
        };
        let s = sample.len();
        if k > s {
            return Err(BaselineError::InvalidK { k, n: s });
        }

        // Dense distance matrix over the sample.
        let mut dist = vec![0.0f64; s * s];
        for a in 0..s {
            for b in (a + 1)..s {
                let d = hamming_distance(table.row(sample[a]), table.row(sample[b])) as f64;
                dist[a * s + b] = d;
                dist[b * s + a] = d;
            }
        }

        let mut active: Vec<bool> = vec![true; s];
        let mut sizes: Vec<usize> = vec![1; s];
        let mut cluster_of: Vec<usize> = (0..s).collect();
        let mut merges = 0usize;
        for _ in 0..(s - k) {
            // Nearest active pair.
            let mut best: Option<(usize, usize, f64)> = None;
            for a in 0..s {
                if !active[a] {
                    continue;
                }
                for b in (a + 1)..s {
                    if !active[b] {
                        continue;
                    }
                    let d = dist[a * s + b];
                    if best.is_none_or(|(_, _, bd)| d < bd) {
                        best = Some((a, b, d));
                    }
                }
            }
            let (a, b, _) = best.expect("at least two active clusters remain");
            // Lance–Williams update of distances to the merged cluster a∪b.
            for c in 0..s {
                if !active[c] || c == a || c == b {
                    continue;
                }
                let updated =
                    self.method.update(dist[a * s + c], dist[b * s + c], sizes[a], sizes[b]);
                dist[a * s + c] = updated;
                dist[c * s + a] = updated;
            }
            active[b] = false;
            sizes[a] += sizes[b];
            for slot in cluster_of.iter_mut() {
                if *slot == b {
                    *slot = a;
                }
            }
            merges += 1;
        }

        let mut labels = vec![usize::MAX; n];
        for (pos, &i) in sample.iter().enumerate() {
            labels[i] = cluster_of[pos];
        }
        if sampled {
            // Attach non-sampled objects to the cluster of their nearest
            // sampled exemplar.
            for i in 0..n {
                if labels[i] != usize::MAX {
                    continue;
                }
                let nearest = sample
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &j)| hamming_distance(table.row(i), table.row(j)))
                    .map(|(pos, _)| pos)
                    .expect("sample is non-empty");
                labels[i] = cluster_of[nearest];
            }
        }
        let k_found = densify(&mut labels);
        Ok(Clustering { labels, k_found, iterations: merges })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use categorical_data::synth::GeneratorConfig;
    use categorical_data::Dataset;

    fn separated(n: usize, k: usize, seed: u64) -> Dataset {
        GeneratorConfig::new("t", n, vec![4; 8], k).noise(0.03).generate(seed).dataset
    }

    #[test]
    fn all_methods_recover_separated_clusters() {
        let data = separated(120, 3, 1);
        for method in [LinkageMethod::Single, LinkageMethod::Complete, LinkageMethod::Average] {
            let result = Linkage::new(method).cluster(data.table(), 3).unwrap();
            let acc = cluster_eval::accuracy(data.labels(), &result.labels);
            assert!(acc > 0.85, "{method:?}: acc={acc}");
        }
    }

    #[test]
    fn produces_exactly_k_clusters() {
        let data = separated(60, 2, 2);
        for k in [2, 4, 7] {
            let result = Linkage::new(LinkageMethod::Average).cluster(data.table(), k).unwrap();
            assert_eq!(result.k_found, k);
        }
    }

    #[test]
    fn sampling_path_labels_everything() {
        let data = separated(500, 2, 3);
        let result = Linkage::new(LinkageMethod::Average)
            .with_sample_size(150)
            .cluster(data.table(), 2)
            .unwrap();
        assert_eq!(result.labels.len(), 500);
        let acc = cluster_eval::accuracy(data.labels(), &result.labels);
        assert!(acc > 0.85, "acc={acc}");
    }

    #[test]
    fn lance_williams_updates() {
        assert_eq!(LinkageMethod::Single.update(1.0, 3.0, 2, 4), 1.0);
        assert_eq!(LinkageMethod::Complete.update(1.0, 3.0, 2, 4), 3.0);
        let avg = LinkageMethod::Average.update(1.0, 4.0, 2, 4);
        assert!((avg - 3.0).abs() < 1e-12);
    }
}
