//! ROCK (Guha, Rastogi & Shim 2000): agglomerative clustering of categorical
//! data driven by *links* — counts of common neighbours — rather than raw
//! pairwise similarity.
//!
//! Two objects are neighbours when their Jaccard similarity is at least θ;
//! `link(p, q)` is the number of their common neighbours; clusters are
//! merged greedily by the goodness measure
//! `g(Ci, Cj) = links[Ci,Cj] / ((n_i+n_j)^(1+2f(θ)) − n_i^(1+2f(θ)) − n_j^(1+2f(θ)))`
//! with `f(θ) = (1−θ)/(1+θ)`. As in the original system, large inputs are
//! clustered on a random sample and the remaining objects are labelled by
//! their neighbour affinity to the formed clusters.
//!
//! When the link graph runs dry before reaching `k` clusters, ROCK cannot
//! deliver the sought partition — the failure Table III scores as 0.000.

use categorical_data::CategoricalTable;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::{
    densify, jaccard_similarity, validate_input, BaselineError, CategoricalClusterer, Clustering,
};

/// The ROCK clusterer.
///
/// # Example
///
/// ```
/// use categorical_data::synth::GeneratorConfig;
/// use mcdc_baselines::{CategoricalClusterer, Rock};
///
/// let data = GeneratorConfig::new("demo", 120, vec![4; 8], 2)
///     .noise(0.05)
///     .generate(1)
///     .dataset;
/// let result = Rock::new(0.5).cluster(data.table(), 2)?;
/// assert_eq!(result.labels.len(), 120);
/// # Ok::<(), mcdc_baselines::BaselineError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rock {
    theta: f64,
    sample_size: usize,
    seed: u64,
}

impl Rock {
    /// Creates a ROCK clusterer with neighbour threshold `theta`
    /// (the original paper explores 0.5–0.8) and a 2000-object sampling cap.
    ///
    /// # Panics
    ///
    /// Panics if `theta` is not in `(0, 1)`.
    pub fn new(theta: f64) -> Self {
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0, 1)");
        Rock { theta, sample_size: 2000, seed: 0 }
    }

    /// Sets the sampling cap for large inputs.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn with_sample_size(mut self, cap: usize) -> Self {
        assert!(cap > 0, "sample size must be positive");
        self.sample_size = cap;
        self
    }

    /// Seeds the sampling step (clustering itself is deterministic).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl CategoricalClusterer for Rock {
    fn name(&self) -> &'static str {
        "ROCK"
    }

    fn cluster(&self, table: &CategoricalTable, k: usize) -> Result<Clustering, BaselineError> {
        validate_input(table, k)?;
        let n = table.n_rows();

        if n <= self.sample_size {
            let labels = self.cluster_sample(table, &(0..n).collect::<Vec<_>>(), k)?;
            let mut labels = labels;
            let k_found = densify(&mut labels);
            return Ok(Clustering { labels, k_found, iterations: n - k_found });
        }

        // Sample, cluster the sample, then label the rest by neighbour
        // affinity to the formed clusters.
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut indices: Vec<usize> = (0..n).collect();
        indices.shuffle(&mut rng);
        let sample: Vec<usize> = indices[..self.sample_size].to_vec();
        let sample_labels = self.cluster_sample(table, &sample, k)?;

        let k_found = sample_labels.iter().copied().max().unwrap_or(0) + 1;
        let mut labels = vec![usize::MAX; n];
        for (s, &i) in sample.iter().enumerate() {
            labels[i] = sample_labels[s];
        }
        // Affinity of an outside object to cluster C: fraction of C that are
        // neighbours, normalized by the expected neighbour growth term.
        let f = (1.0 - self.theta) / (1.0 + self.theta);
        let mut sizes = vec![0usize; k_found];
        for &l in &sample_labels {
            sizes[l] += 1;
        }
        for i in 0..n {
            if labels[i] != usize::MAX {
                continue;
            }
            let row = table.row(i);
            let mut neighbour_counts = vec![0usize; k_found];
            for (s, &j) in sample.iter().enumerate() {
                if jaccard_similarity(row, table.row(j)) >= self.theta {
                    neighbour_counts[sample_labels[s]] += 1;
                }
            }
            let best = (0..k_found)
                .max_by(|&a, &b| {
                    let ga = neighbour_counts[a] as f64 / (sizes[a] as f64 + 1.0).powf(f);
                    let gb = neighbour_counts[b] as f64 / (sizes[b] as f64 + 1.0).powf(f);
                    ga.partial_cmp(&gb).expect("finite goodness")
                })
                .expect("k_found >= 1");
            labels[i] = best;
        }
        let k_final = densify(&mut labels);
        Ok(Clustering { labels, k_found: k_final, iterations: self.sample_size - k_final })
    }
}

impl Rock {
    /// Agglomerates the given objects down to `k` clusters, returning one
    /// label per sample position.
    fn cluster_sample(
        &self,
        table: &CategoricalTable,
        sample: &[usize],
        k: usize,
    ) -> Result<Vec<usize>, BaselineError> {
        let s = sample.len();
        if k > s {
            return Err(BaselineError::InvalidK { k, n: s });
        }
        // Adjacency under the θ-neighbour relation.
        let mut neighbours: Vec<Vec<usize>> = vec![Vec::new(); s];
        for a in 0..s {
            for b in (a + 1)..s {
                if jaccard_similarity(table.row(sample[a]), table.row(sample[b])) >= self.theta {
                    neighbours[a].push(b);
                    neighbours[b].push(a);
                }
            }
        }
        // links[a][b] = number of common neighbours (computed via the
        // standard "for each point, all neighbour pairs gain a link" sweep).
        let mut links: Vec<std::collections::HashMap<usize, u32>> =
            vec![std::collections::HashMap::new(); s];
        for adjacency in &neighbours {
            for (x, &a) in adjacency.iter().enumerate() {
                for &b in &adjacency[x + 1..] {
                    *links[a].entry(b).or_insert(0) += 1;
                    *links[b].entry(a).or_insert(0) += 1;
                }
            }
        }

        let f = (1.0 - self.theta) / (1.0 + self.theta);
        let exponent = 1.0 + 2.0 * f;
        let goodness = |links_ab: u32, na: usize, nb: usize| -> f64 {
            let denom = ((na + nb) as f64).powf(exponent)
                - (na as f64).powf(exponent)
                - (nb as f64).powf(exponent);
            links_ab as f64 / denom.max(f64::EPSILON)
        };

        // Greedy agglomeration. Cluster id = representative index.
        let mut cluster_of: Vec<usize> = (0..s).collect();
        let mut members: Vec<Vec<usize>> = (0..s).map(|i| vec![i]).collect();
        let mut live: std::collections::BTreeSet<usize> = (0..s).collect();
        // Inter-cluster links start as point links.
        let mut cluster_links: Vec<std::collections::HashMap<usize, u32>> = links;

        let mut n_clusters = s;
        while n_clusters > k {
            // Find the live pair with maximum goodness.
            let mut best: Option<(usize, usize, f64)> = None;
            for &a in &live {
                for (&b, &l) in &cluster_links[a] {
                    if b <= a || !live.contains(&b) || l == 0 {
                        continue;
                    }
                    let g = goodness(l, members[a].len(), members[b].len());
                    if best.is_none_or(|(_, _, bg)| g > bg) {
                        best = Some((a, b, g));
                    }
                }
            }
            let Some((a, b, _)) = best else {
                // Link graph exhausted before reaching k clusters. ROCK's
                // outlier handling keeps the k largest clusters and attaches
                // the leftovers to their most similar survivor; only a fully
                // disconnected graph (no merge ever possible toward k
                // populated clusters) is a genuine failure.
                let mut survivors: Vec<usize> = live.iter().copied().collect();
                survivors.sort_by_key(|&c| std::cmp::Reverse(members[c].len()));
                let keep: Vec<usize> = survivors[..k].to_vec();
                if keep.iter().all(|&c| members[c].len() <= 1) {
                    return Err(BaselineError::FailedToFormK { k, found: n_clusters });
                }
                for &c in &survivors[k..] {
                    for i in members[c].clone() {
                        let target = *keep
                            .iter()
                            .max_by(|&&x, &&y| {
                                let sx = exemplar_similarity(table, sample, i, &members[x]);
                                let sy = exemplar_similarity(table, sample, i, &members[y]);
                                sx.partial_cmp(&sy).expect("finite similarity")
                            })
                            .expect("k >= 1 survivors");
                        cluster_of[i] = target;
                    }
                }
                return Ok(cluster_of);
            };
            // Merge b into a.
            let b_members = std::mem::take(&mut members[b]);
            for &i in &b_members {
                cluster_of[i] = a;
            }
            members[a].extend(b_members);
            live.remove(&b);
            let b_links = std::mem::take(&mut cluster_links[b]);
            for (c, l) in b_links {
                if c == a || !live.contains(&c) {
                    continue;
                }
                *cluster_links[a].entry(c).or_insert(0) += l;
                let into_c = cluster_links[c].remove(&b).unwrap_or(0);
                debug_assert_eq!(into_c, l);
                *cluster_links[c].entry(a).or_insert(0) += l;
            }
            cluster_links[a].remove(&b);
            n_clusters -= 1;
        }

        Ok(cluster_of)
    }
}

/// Mean Jaccard similarity between sample object `i` and a cluster's members
/// (used only in the dry-link fallback, so the O(|cluster|) scan is fine).
fn exemplar_similarity(
    table: &CategoricalTable,
    sample: &[usize],
    i: usize,
    members: &[usize],
) -> f64 {
    if members.is_empty() {
        return 0.0;
    }
    members
        .iter()
        .map(|&j| jaccard_similarity(table.row(sample[i]), table.row(sample[j])))
        .sum::<f64>()
        / members.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use categorical_data::synth::GeneratorConfig;
    use categorical_data::Dataset;

    fn separated(n: usize, k: usize, seed: u64) -> Dataset {
        GeneratorConfig::new("t", n, vec![4; 8], k).noise(0.03).generate(seed).dataset
    }

    #[test]
    fn recovers_separated_clusters() {
        let data = separated(150, 3, 1);
        let result = Rock::new(0.4).cluster(data.table(), 3).unwrap();
        let acc = cluster_eval::accuracy(data.labels(), &result.labels);
        assert!(acc > 0.85, "acc={acc}");
    }

    #[test]
    fn is_deterministic_without_sampling() {
        let data = separated(100, 2, 2);
        let rock = Rock::new(0.5);
        assert_eq!(rock.cluster(data.table(), 2).unwrap(), rock.cluster(data.table(), 2).unwrap());
    }

    #[test]
    fn sampling_path_labels_everything() {
        let data = separated(600, 2, 3);
        let result = Rock::new(0.4).with_sample_size(200).cluster(data.table(), 2).unwrap();
        assert_eq!(result.labels.len(), 600);
        let acc = cluster_eval::accuracy(data.labels(), &result.labels);
        assert!(acc > 0.8, "acc={acc}");
    }

    #[test]
    fn fails_when_link_graph_is_too_sparse() {
        // Objects pairwise-disjoint in values: no neighbours at any θ, so no
        // merges can happen and k=1 is unreachable.
        let mut table = CategoricalTable::new(categorical_data::Schema::uniform(2, 8));
        for v in 0..8 {
            table.push_row(&[v, v]).unwrap();
        }
        let err = Rock::new(0.5).cluster(&table, 1).unwrap_err();
        assert!(matches!(err, BaselineError::FailedToFormK { k: 1, .. }));
    }

    #[test]
    fn rejects_invalid_theta() {
        let result = std::panic::catch_unwind(|| Rock::new(0.0));
        assert!(result.is_err());
    }
}
