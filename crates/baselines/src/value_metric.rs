//! Shared machinery for metrics that define *per-value* distances: a dense
//! per-feature value-distance table plus a k-modes-style clusterer that
//! works with arbitrary value distances (cluster centers become per-feature
//! *medoid values*). GUDMM and ADC both build on this.

use categorical_data::{CategoricalTable, MISSING};

use crate::{densify, validate_input, BaselineError, Clustering};

/// Dense per-feature value-distance matrices: `distance(r, a, b)` is the
/// learned dissimilarity between values `a` and `b` of feature `r`,
/// normalized into `[0, 1]` with zero diagonal.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueDistanceTable {
    /// `tables[r]` is an `m_r × m_r` row-major matrix.
    tables: Vec<Vec<f64>>,
    cardinalities: Vec<usize>,
}

impl ValueDistanceTable {
    /// Builds from per-feature square matrices.
    ///
    /// # Panics
    ///
    /// Panics if any matrix is not square.
    pub fn new(tables: Vec<Vec<f64>>, cardinalities: Vec<usize>) -> Self {
        assert_eq!(tables.len(), cardinalities.len());
        for (t, &m) in tables.iter().zip(&cardinalities) {
            assert_eq!(t.len(), m * m, "value-distance matrix must be m×m");
        }
        ValueDistanceTable { tables, cardinalities }
    }

    /// Number of features covered.
    pub fn n_features(&self) -> usize {
        self.tables.len()
    }

    /// Distance between values `a` and `b` of feature `r`; missing values
    /// are maximally distant (1.0) from everything.
    ///
    /// # Panics
    ///
    /// Panics if `r` or a non-missing code is out of bounds.
    pub fn distance(&self, r: usize, a: u32, b: u32) -> f64 {
        if a == MISSING || b == MISSING {
            return 1.0;
        }
        let m = self.cardinalities[r];
        self.tables[r][a as usize * m + b as usize]
    }

    /// Row-distance: sum of per-feature value distances.
    pub fn row_distance(&self, a: &[u32], b: &[u32]) -> f64 {
        a.iter().zip(b).enumerate().map(|(r, (&x, &y))| self.distance(r, x, y)).sum()
    }
}

/// k-modes-style clustering under an arbitrary [`ValueDistanceTable`]:
/// assignment minimizes the summed value distance to the center; centers are
/// per-feature *medoid values* (the value minimizing the within-cluster
/// distance mass for that feature).
///
/// Mirrors the failure behaviour the paper records for GUDMM: when the
/// sought `k` non-empty clusters cannot be maintained, an error is returned
/// rather than silently delivering fewer clusters.
///
/// # Errors
///
/// [`BaselineError::EmptyInput`] / [`BaselineError::InvalidK`] on invalid
/// shapes; [`BaselineError::FailedToFormK`] when clusters collapse.
pub fn metric_kmodes(
    table: &CategoricalTable,
    metric: &ValueDistanceTable,
    k: usize,
    seed: u64,
    max_iterations: usize,
) -> Result<Clustering, BaselineError> {
    validate_input(table, k)?;
    let n = table.n_rows();
    let d = table.n_features();

    let mut centers: Vec<Vec<u32>> =
        crate::spread_seeds(table, k, seed).iter().map(|&i| table.row(i).to_vec()).collect();

    let mut labels = vec![usize::MAX; n];
    let mut iterations = 0;
    for _ in 0..max_iterations {
        iterations += 1;
        let mut changed = false;
        for i in 0..n {
            let row = table.row(i);
            let best = centers
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    metric
                        .row_distance(row, a)
                        .partial_cmp(&metric.row_distance(row, b))
                        .expect("distances are finite")
                })
                .map(|(l, _)| l)
                .expect("k >= 1");
            if labels[i] != best {
                labels[i] = best;
                changed = true;
            }
        }

        // Re-seed any emptied cluster on the object farthest from its
        // current center before refreshing modes.
        let mut sizes = vec![0usize; k];
        for &l in &labels {
            sizes[l] += 1;
        }
        for l in 0..k {
            if sizes[l] > 0 {
                continue;
            }
            let far = (0..n).filter(|&i| sizes[labels[i]] > 1).max_by(|&a, &b| {
                let da = metric.row_distance(table.row(a), &centers[labels[a]]);
                let db = metric.row_distance(table.row(b), &centers[labels[b]]);
                da.partial_cmp(&db).expect("finite")
            });
            if let Some(i) = far {
                sizes[labels[i]] -= 1;
                labels[i] = l;
                sizes[l] = 1;
                changed = true;
            }
        }

        // Medoid-value center update: per cluster/feature pick the value
        // minimizing Σ_t count[t] · distance(t, v).
        let mut value_counts: Vec<Vec<Vec<u32>>> = (0..k)
            .map(|_| {
                (0..d)
                    .map(|r| vec![0u32; table.schema().domain(r).cardinality() as usize])
                    .collect()
            })
            .collect();
        for (i, &l) in labels.iter().enumerate() {
            for (r, &v) in table.row(i).iter().enumerate() {
                if v != MISSING {
                    value_counts[l][r][v as usize] += 1;
                }
            }
        }
        for (l, center) in centers.iter_mut().enumerate() {
            for (r, slot) in center.iter_mut().enumerate() {
                let m = value_counts[l][r].len();
                let best_value = (0..m)
                    .min_by(|&a, &b| {
                        let cost = |v: usize| -> f64 {
                            (0..m)
                                .map(|t| {
                                    value_counts[l][r][t] as f64
                                        * metric.distance(r, t as u32, v as u32)
                                })
                                .sum()
                        };
                        cost(a).partial_cmp(&cost(b)).expect("finite")
                    })
                    .unwrap_or(0);
                *slot = best_value as u32;
            }
        }
        if !changed {
            break;
        }
    }

    let k_found = densify(&mut labels);
    if k_found < k {
        return Err(BaselineError::FailedToFormK { k, found: k_found });
    }
    Ok(Clustering { labels, k_found, iterations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use categorical_data::Schema;

    /// Hamming as a `ValueDistanceTable`: 0 on the diagonal, 1 elsewhere.
    fn hamming_metric(schema: &Schema) -> ValueDistanceTable {
        let tables: Vec<Vec<f64>> = (0..schema.n_features())
            .map(|r| {
                let m = schema.domain(r).cardinality() as usize;
                let mut t = vec![1.0; m * m];
                for v in 0..m {
                    t[v * m + v] = 0.0;
                }
                t
            })
            .collect();
        let cards = schema.cardinalities().iter().map(|&c| c as usize).collect();
        ValueDistanceTable::new(tables, cards)
    }

    #[test]
    fn distance_lookup_and_missing() {
        let schema = Schema::uniform(2, 3);
        let m = hamming_metric(&schema);
        assert_eq!(m.distance(0, 1, 1), 0.0);
        assert_eq!(m.distance(0, 1, 2), 1.0);
        assert_eq!(m.distance(1, MISSING, 0), 1.0);
        assert_eq!(m.row_distance(&[0, 1], &[0, 2]), 1.0);
    }

    #[test]
    fn metric_kmodes_with_hamming_recovers_clusters() {
        use categorical_data::synth::GeneratorConfig;
        let data = GeneratorConfig::new("t", 200, vec![4; 8], 2).noise(0.05).generate(1).dataset;
        let metric = hamming_metric(data.table().schema());
        let result = metric_kmodes(data.table(), &metric, 2, 3, 100).unwrap();
        let acc = cluster_eval::accuracy(data.labels(), &result.labels);
        assert!(acc > 0.9, "acc={acc}");
    }

    #[test]
    #[should_panic(expected = "m×m")]
    fn rejects_non_square_matrices() {
        let _ = ValueDistanceTable::new(vec![vec![0.0; 3]], vec![2]);
    }
}
