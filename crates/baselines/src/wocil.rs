//! WOCIL-style subspace clustering (Jia & Cheung 2017): iterative
//! object–cluster similarity clustering with per-cluster attribute weights
//! and a deterministic density-based initialization.
//!
//! The reference system targets mixed data with an unknown cluster number;
//! Table III hands every method the sought `k`, so this re-implementation
//! (the original is closed source — DESIGN.md §3) keeps the two properties
//! the paper leans on: per-cluster *subspace* attribute weighting, and a
//! deterministic initialization that makes the method's Table III standard
//! deviation exactly zero.

use categorical_data::stats::entropy_from_counts;
use categorical_data::{CategoricalTable, MISSING};

use crate::{
    densify, hamming_distance, validate_input, BaselineError, CategoricalClusterer, Clustering,
};

/// The WOCIL-style clusterer.
///
/// # Example
///
/// ```
/// use categorical_data::synth::GeneratorConfig;
/// use mcdc_baselines::{CategoricalClusterer, Wocil};
///
/// let data = GeneratorConfig::new("demo", 90, vec![3; 5], 3)
///     .noise(0.05)
///     .generate(1)
///     .dataset;
/// let result = Wocil::new().cluster(data.table(), 3)?;
/// assert_eq!(result.labels.len(), 90);
/// # Ok::<(), mcdc_baselines::BaselineError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Wocil {
    max_iterations: usize,
}

impl Wocil {
    /// Creates a WOCIL clusterer with a 100-iteration cap.
    pub fn new() -> Self {
        Wocil { max_iterations: 100 }
    }

    /// Caps the assign/update iterations.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn with_max_iterations(mut self, cap: usize) -> Self {
        assert!(cap > 0, "max_iterations must be positive");
        self.max_iterations = cap;
        self
    }
}

/// Deterministic density-distance seeding: the first seed is the object with
/// the most near-duplicates; each further seed maximizes
/// `density(i) · min_distance_to_chosen(i)` (a deterministic analogue of
/// k-means++ used for WOCIL's "very stable initialization").
fn density_seeds(table: &CategoricalTable, k: usize) -> Vec<usize> {
    let n = table.n_rows();
    let d = table.n_features();
    // Density via per-feature frequency mass (O(nd), no pairwise sweep).
    let mut frequencies: Vec<Vec<u32>> =
        (0..d).map(|r| vec![0u32; table.schema().domain(r).cardinality() as usize]).collect();
    for row in table.rows() {
        for (r, &v) in row.iter().enumerate() {
            if v != MISSING {
                frequencies[r][v as usize] += 1;
            }
        }
    }
    let density: Vec<f64> = (0..n)
        .map(|i| {
            table
                .row(i)
                .iter()
                .enumerate()
                .map(|(r, &v)| if v == MISSING { 0.0 } else { frequencies[r][v as usize] as f64 })
                .sum::<f64>()
                / (n as f64 * d as f64)
        })
        .collect();

    let mut seeds = Vec::with_capacity(k);
    let first = (0..n)
        .max_by(|&a, &b| density[a].partial_cmp(&density[b]).expect("finite"))
        .expect("n >= 1");
    seeds.push(first);
    while seeds.len() < k {
        let next = (0..n)
            .filter(|i| !seeds.contains(i))
            .max_by(|&a, &b| {
                let da = score(table, &seeds, a, &density);
                let db = score(table, &seeds, b, &density);
                da.partial_cmp(&db).expect("finite")
            })
            .expect("k <= n leaves candidates");
        seeds.push(next);
    }
    seeds
}

fn score(table: &CategoricalTable, seeds: &[usize], i: usize, density: &[f64]) -> f64 {
    let min_dist =
        seeds.iter().map(|&s| hamming_distance(table.row(i), table.row(s))).min().unwrap_or(0)
            as f64;
    density[i] * min_dist
}

impl CategoricalClusterer for Wocil {
    fn name(&self) -> &'static str {
        "WOCIL"
    }

    fn cluster(&self, table: &CategoricalTable, k: usize) -> Result<Clustering, BaselineError> {
        validate_input(table, k)?;
        let n = table.n_rows();
        let d = table.n_features();

        let seeds = density_seeds(table, k);
        // Cluster value-count tables (the subspace statistics).
        let mut counts: Vec<Vec<Vec<u32>>> = (0..k)
            .map(|_| {
                (0..d)
                    .map(|r| vec![0u32; table.schema().domain(r).cardinality() as usize])
                    .collect()
            })
            .collect();
        let mut sizes = vec![0usize; k];
        let mut labels = vec![usize::MAX; n];
        for (l, &i) in seeds.iter().enumerate() {
            assign(table, i, l, &mut counts, &mut sizes, &mut labels);
        }
        // Per-cluster attribute weights from within-cluster value entropy:
        // concentrated features get high weight (the subspace).
        let mut weights = vec![vec![1.0 / d as f64; d]; k];
        let mut iterations = 0;

        for _ in 0..self.max_iterations {
            iterations += 1;
            let mut changed = false;
            for i in 0..n {
                let row = table.row(i);
                let mut best = 0usize;
                let mut best_sim = f64::NEG_INFINITY;
                for l in 0..k {
                    if sizes[l] == 0 {
                        continue;
                    }
                    let sim: f64 = row
                        .iter()
                        .enumerate()
                        .map(|(r, &v)| {
                            if v == MISSING {
                                return 0.0;
                            }
                            weights[l][r] * counts[l][r][v as usize] as f64 / sizes[l] as f64
                        })
                        .sum();
                    if sim > best_sim {
                        best_sim = sim;
                        best = l;
                    }
                }
                if labels[i] != best {
                    if labels[i] != usize::MAX {
                        unassign(table, i, labels[i], &mut counts, &mut sizes);
                    }
                    assign(table, i, best, &mut counts, &mut sizes, &mut labels);
                    changed = true;
                }
            }

            // Refresh subspace weights: w_rl ∝ exp(−H_rl).
            for l in 0..k {
                if sizes[l] == 0 {
                    continue;
                }
                let mut total = 0.0;
                for r in 0..d {
                    let h = entropy_from_counts(counts[l][r].iter().map(|&c| c as u64));
                    weights[l][r] = (-h).exp();
                    total += weights[l][r];
                }
                for w in weights[l].iter_mut() {
                    *w /= total;
                }
            }

            if !changed {
                break;
            }
        }

        let k_found = densify(&mut labels);
        if k_found < k {
            return Err(BaselineError::FailedToFormK { k, found: k_found });
        }
        Ok(Clustering { labels, k_found, iterations })
    }
}

fn assign(
    table: &CategoricalTable,
    i: usize,
    l: usize,
    counts: &mut [Vec<Vec<u32>>],
    sizes: &mut [usize],
    labels: &mut [usize],
) {
    for (r, &v) in table.row(i).iter().enumerate() {
        if v != MISSING {
            counts[l][r][v as usize] += 1;
        }
    }
    sizes[l] += 1;
    labels[i] = l;
}

fn unassign(
    table: &CategoricalTable,
    i: usize,
    l: usize,
    counts: &mut [Vec<Vec<u32>>],
    sizes: &mut [usize],
) {
    for (r, &v) in table.row(i).iter().enumerate() {
        if v != MISSING {
            counts[l][r][v as usize] -= 1;
        }
    }
    sizes[l] -= 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use categorical_data::synth::GeneratorConfig;
    use categorical_data::Dataset;

    fn separated(n: usize, k: usize, seed: u64) -> Dataset {
        GeneratorConfig::new("t", n, vec![4; 8], k).noise(0.05).generate(seed).dataset
    }

    #[test]
    fn recovers_separated_clusters() {
        let data = separated(240, 3, 1);
        let result = Wocil::new().cluster(data.table(), 3).unwrap();
        let acc = cluster_eval::accuracy(data.labels(), &result.labels);
        assert!(acc > 0.9, "acc={acc}");
    }

    #[test]
    fn is_fully_deterministic() {
        // No RNG anywhere: byte-identical runs (the paper's σ = 0 rows).
        let data = separated(150, 2, 2);
        let wocil = Wocil::new();
        assert_eq!(
            wocil.cluster(data.table(), 2).unwrap(),
            wocil.cluster(data.table(), 2).unwrap()
        );
    }

    #[test]
    fn density_seeds_are_distinct() {
        let data = separated(60, 3, 3);
        let seeds = density_seeds(data.table(), 5);
        let set: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(set.len(), 5);
    }

    #[test]
    fn rejects_invalid_k() {
        let data = separated(10, 2, 4);
        assert!(Wocil::new().cluster(data.table(), 0).is_err());
        assert!(Wocil::new().cluster(data.table(), 11).is_err());
    }
}
