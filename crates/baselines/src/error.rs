use std::fmt;

/// Error raised by baseline clusterers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BaselineError {
    /// The input table holds no objects.
    EmptyInput,
    /// The requested number of clusters is invalid for the input.
    InvalidK {
        /// Requested number of clusters.
        k: usize,
        /// Number of objects available.
        n: usize,
    },
    /// The algorithm could not deliver `k` non-empty clusters — the failure
    /// mode the paper's Table III records as a 0.000 score (e.g. ROCK on
    /// Nursery, FKMAWCW on Mushroom, GUDMM on Balance).
    FailedToFormK {
        /// Requested number of clusters.
        k: usize,
        /// Number of clusters the algorithm ended with.
        found: usize,
    },
    /// A configuration value was out of range.
    InvalidConfig {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Human-readable constraint description.
        message: String,
    },
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::EmptyInput => write!(f, "input table holds no objects"),
            BaselineError::InvalidK { k, n } => {
                write!(f, "cannot form {k} clusters from {n} objects")
            }
            BaselineError::FailedToFormK { k, found } => {
                write!(f, "algorithm delivered {found} clusters where {k} were sought")
            }
            BaselineError::InvalidConfig { parameter, message } => {
                write!(f, "invalid configuration for {parameter}: {message}")
            }
        }
    }
}

impl std::error::Error for BaselineError {}
