//! Property-based tests: every baseline yields a valid labeling (or a clean
//! failure) on arbitrary categorical data.

use categorical_data::{CategoricalTable, Schema};
use mcdc_baselines::{
    Adc, BaselineError, CategoricalClusterer, Fkmawcw, Gudmm, KModes, Linkage, LinkageMethod, Rock,
    Wocil,
};
use proptest::prelude::*;

fn arbitrary_table() -> impl Strategy<Value = CategoricalTable> {
    (5usize..40, 1usize..6).prop_flat_map(|(n, d)| {
        proptest::collection::vec(proptest::collection::vec(0u32..3, d), n).prop_map(move |rows| {
            CategoricalTable::from_rows(Schema::uniform(d, 3), rows.iter().map(Vec::as_slice))
                .expect("rows are schema-valid")
        })
    })
}

fn check(
    clusterer: &dyn CategoricalClusterer,
    table: &CategoricalTable,
    k: usize,
) -> Result<(), TestCaseError> {
    match clusterer.cluster(table, k) {
        Ok(result) => {
            prop_assert_eq!(result.labels.len(), table.n_rows(), "{}", clusterer.name());
            prop_assert!(result.k_found <= k, "{}", clusterer.name());
            prop_assert!(
                result.labels.iter().all(|&l| l < result.k_found),
                "{}: labels must be dense",
                clusterer.name()
            );
        }
        Err(BaselineError::FailedToFormK { found, .. }) => {
            // Partitional methods fail by collapsing below k; link-based
            // agglomeration (ROCK) fails when the graph dries up above k.
            prop_assert!(found != k, "{}", clusterer.name());
        }
        Err(e) => prop_assert!(false, "{}: unexpected error {e}", clusterer.name()),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn partitional_methods_yield_valid_labelings(table in arbitrary_table(), k in 1usize..5) {
        prop_assume!(k <= table.n_rows());
        check(&KModes::new(1), &table, k)?;
        check(&Wocil::new(), &table, k)?;
        check(&Fkmawcw::new(1), &table, k)?;
    }

    #[test]
    fn metric_methods_yield_valid_labelings(table in arbitrary_table(), k in 1usize..4) {
        prop_assume!(k <= table.n_rows());
        check(&Gudmm::new(1), &table, k)?;
        check(&Adc::new(1), &table, k)?;
    }

    #[test]
    fn hierarchical_methods_yield_valid_labelings(table in arbitrary_table(), k in 1usize..4) {
        prop_assume!(k <= table.n_rows());
        check(&Linkage::new(LinkageMethod::Average), &table, k)?;
        check(&Rock::new(0.5), &table, k)?;
    }
}
