//! Reference MGCPL: the multi-granular competitive penalization cascade of
//! Alg. 1, transcribed line by line — serial, eager, one object at a time.
//!
//! Each granularity level runs rival-penalized competitive learning to a
//! partition fixpoint (Eqs. 4–13), prunes clusters that lose every member,
//! refreshes the per-cluster feature weights ω (Eqs. 15–18), then
//! re-launches at the next (coarser) level (step 13) until the cluster
//! count stabilizes. The surviving partitions, finest first, are the
//! multi-granular Γ with cluster counts κ.

use categorical_data::CategoricalTable;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::profile::{feature_weights, GlobalCounts, Profile};
use crate::{sigmoid_weight, ReferenceConfig};

/// Learning passes per granularity level before moving on (Alg. 1's inner
/// loop bound; matches the production default).
const MAX_INNER_ITERATIONS: usize = 8;
/// Granularity levels before giving up on κ stabilizing.
const MAX_STAGES: usize = 64;

/// Output of the reference MGCPL stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReferenceMgcpl {
    /// One label vector per granularity, finest first, labels dense `0..κ`.
    pub partitions: Vec<Vec<usize>>,
    /// Cluster count per granularity (strictly decreasing).
    pub kappa: Vec<usize>,
}

impl ReferenceMgcpl {
    /// Number of granularity levels σ.
    pub fn sigma(&self) -> usize {
        self.partitions.len()
    }
}

/// One granularity level's mutable learning state.
struct Level {
    profiles: Vec<Profile>,
    /// Winning-amount δ_l of Eqs. (12)–(13), clamped to [0, 1].
    delta: Vec<f64>,
    /// Cumulative wins this stage (the ρ conscience of Eq. 7 reads these).
    wins_prev: Vec<u64>,
    /// Wins inside the current pass.
    wins_now: Vec<u64>,
    /// Per-cluster feature weights ω_l (Eq. 18), row per cluster.
    omega: Vec<Vec<f64>>,
}

/// Runs the reference multi-granular cascade on `table`.
///
/// # Errors
///
/// Returns a description of the invalid input: an empty table, or a
/// configured `k₀` outside `1..=n`.
pub fn reference_mgcpl(
    table: &CategoricalTable,
    config: &ReferenceConfig,
) -> Result<ReferenceMgcpl, String> {
    let n = table.n_rows();
    if n == 0 {
        return Err("empty input table".into());
    }
    let d = table.n_features();
    let k0 = match config.initial_k {
        Some(k) if k == 0 || k > n => return Err(format!("initial k {k} out of 1..={n}")),
        Some(k) => k,
        // The paper's √n heuristic (Alg. 1 step 2).
        None => ((n as f64).sqrt().round() as usize).clamp(2, n),
    };
    let cardinalities: Vec<usize> =
        table.schema().cardinalities().iter().map(|&m| m as usize).collect();
    let global = GlobalCounts::from_table(table);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);

    // Alg. 1 step 3: seed k₀ clusters on random distinct objects.
    let mut seeds: Vec<usize> = (0..n).collect();
    seeds.shuffle(&mut rng);
    seeds.truncate(k0);

    let mut level = Level {
        profiles: seeds
            .iter()
            .map(|&i| {
                let mut profile = Profile::new(&cardinalities);
                profile.add(table.row(i));
                profile
            })
            .collect(),
        delta: vec![1.0; k0],
        wins_prev: vec![0; k0],
        wins_now: vec![0; k0],
        omega: vec![vec![1.0 / d as f64; d]; k0],
    };
    let mut assignment: Vec<Option<usize>> = vec![None; n];
    for (c, &i) in seeds.iter().enumerate() {
        assignment[i] = Some(c);
    }

    let mut partitions: Vec<Vec<usize>> = Vec::new();
    let mut kappa: Vec<usize> = Vec::new();
    let mut k_old = level.profiles.len();

    for stage in 1..=MAX_STAGES {
        run_level(table, &global, &mut level, &mut assignment, &mut rng, config);
        let k_after = level.profiles.len();

        // κ converged when a whole level changes nothing (needs a previous
        // level to compare against).
        let converged = stage > 1 && k_after == k_old;
        if !converged {
            partitions.push(dense_labels(&assignment));
            kappa.push(k_after);
        }
        if converged || k_after <= 1 {
            break;
        }
        k_old = k_after;

        // Re-launch for the next, coarser granularity (Alg. 1 step 13):
        // cold resets the competition statistics; carry keeps δ/ω and
        // clears only the win counts (the ρ conscience is stage-scoped).
        level.wins_prev.iter_mut().for_each(|w| *w = 0);
        level.wins_now.iter_mut().for_each(|w| *w = 0);
        if !config.carry_warm_start {
            level.delta.fill(1.0);
            for omega in level.omega.iter_mut() {
                omega.fill(1.0 / d as f64);
            }
        }
    }

    Ok(ReferenceMgcpl { partitions, kappa })
}

/// One granularity level: competitive penalization passes to the partition
/// fixpoint (Alg. 1 steps 4–12).
fn run_level(
    table: &CategoricalTable,
    global: &GlobalCounts,
    level: &mut Level,
    assignment: &mut [Option<usize>],
    rng: &mut ChaCha8Rng,
    config: &ReferenceConfig,
) {
    let n = table.n_rows();
    let d = table.n_features();
    let eta = config.learning_rate;
    let mut order: Vec<usize> = (0..n).collect();

    for _ in 0..MAX_INNER_ITERATIONS {
        // Random presentation order per pass (the shuffles compose, so no
        // two passes present in the same order).
        order.shuffle(rng);

        // Pass-start snapshot of the conscience: ρ_l is cluster l's share
        // of all wins so far this stage (Eq. 7), and the competition
        // prefactor (1 − ρ_l) · u(δ_l) is fixed for the pass except where
        // δ moves (Eqs. 6, 11).
        let k = level.profiles.len();
        let total_prev: u64 = level.wins_prev.iter().sum();
        level.wins_now.iter_mut().for_each(|w| *w = 0);
        let one_minus_rho: Vec<f64> = level
            .wins_prev
            .iter()
            .map(|&w| if total_prev == 0 { 1.0 } else { 1.0 - w as f64 / total_prev as f64 })
            .collect();
        let mut prefactors: Vec<f64> = one_minus_rho
            .iter()
            .zip(&level.delta)
            .map(|(&m, &delta)| m * sigmoid_weight(delta))
            .collect();
        // Weighted similarity (Eq. 14) is already a normalized sum; the
        // unweighted Eq. (1) needs the 1/d mean applied after the raw sum.
        let post_scale = if config.weighted_similarity { 1.0 } else { 1.0 / d as f64 };

        let mut changed = false;
        let mut scores = vec![0.0f64; k];
        let mut sums = vec![0.0f64; k];
        for &i in &order {
            let row = table.row(i);

            // Score every cluster (Eq. 6) and pick winner v and rival h
            // (Eqs. 4, 9) — lowest index wins ties, scanned in order.
            for (l, profile) in level.profiles.iter().enumerate() {
                let weights = config.weighted_similarity.then(|| level.omega[l].as_slice());
                sums[l] = profile.similarity_sum(row, weights);
                scores[l] = prefactors[l] * (sums[l] * post_scale);
            }
            let (best, rival) = winner_and_rival(&scores);

            // Move the object to the winner (Eq. 10), updating counts.
            let previous = assignment[i];
            if previous != Some(best) {
                if let Some(p) = previous {
                    level.profiles[p].remove(row);
                }
                level.profiles[best].add(row);
                changed = true;
            }
            assignment[i] = Some(best);
            level.wins_now[best] += 1;

            // Award the winner (Eq. 12); penalize the rival in proportion
            // to how similar it was (Eq. 13). δ stays clamped to [0, 1],
            // and the prefactor is refreshed only when δ actually moved.
            let awarded = (level.delta[best] + eta).min(1.0);
            if awarded != level.delta[best] {
                level.delta[best] = awarded;
                prefactors[best] = one_minus_rho[best] * sigmoid_weight(awarded);
            }
            if rival != usize::MAX {
                let rival_similarity = sums[rival] * post_scale;
                let penalized = (level.delta[rival] - eta * rival_similarity).max(0.0);
                if penalized != level.delta[rival] {
                    level.delta[rival] = penalized;
                    prefactors[rival] = one_minus_rho[rival] * sigmoid_weight(penalized);
                }
            }
        }

        // Eliminate clusters that lost every member; an elimination resets
        // the survivors' competition statistics (the step-13 re-launch
        // applied at the elimination event).
        if level.profiles.iter().any(Profile::is_empty) {
            prune_empty(level, assignment);
            level.delta.fill(1.0);
            level.wins_prev.iter_mut().for_each(|w| *w = 0);
            level.wins_now.iter_mut().for_each(|w| *w = 0);
            changed = true;
        }

        // Refresh ω per cluster (Alg. 1 step 11, Eqs. 15–18).
        if config.weighted_similarity {
            for (profile, omega) in level.profiles.iter().zip(level.omega.iter_mut()) {
                *omega = feature_weights(profile, global);
            }
        }

        // Fold this pass's wins into the stage-running conscience.
        for (prev, &now) in level.wins_prev.iter_mut().zip(&level.wins_now) {
            *prev += now;
        }

        if !changed {
            break;
        }
    }
}

/// Argmax and runner-up over the competition scores, first index winning
/// ties (`usize::MAX` rival when only one cluster competes).
fn winner_and_rival(scores: &[f64]) -> (usize, usize) {
    let mut best = 0usize;
    let mut rival = usize::MAX;
    let mut best_score = scores[0];
    let mut rival_score = f64::NEG_INFINITY;
    for (l, &score) in scores.iter().enumerate().skip(1) {
        if score > best_score {
            rival = best;
            rival_score = best_score;
            best = l;
            best_score = score;
        } else if rival == usize::MAX || score > rival_score {
            rival = l;
            rival_score = score;
        }
    }
    (best, rival)
}

/// Drops empty clusters, compacting the parallel state vectors in place
/// (surviving clusters keep their relative order) and re-mapping the
/// assignment indices.
fn prune_empty(level: &mut Level, assignment: &mut [Option<usize>]) {
    let k = level.profiles.len();
    let mut remap: Vec<Option<usize>> = Vec::with_capacity(k);
    let mut next = 0usize;
    for l in 0..k {
        if level.profiles[l].is_empty() {
            remap.push(None);
        } else {
            remap.push(Some(next));
            next += 1;
        }
    }
    let mut survives = remap.iter().map(Option::is_some);
    level.profiles.retain(|_| survives.next().unwrap());
    let mut survives = remap.iter().map(Option::is_some);
    level.delta.retain(|_| survives.next().unwrap());
    let mut survives = remap.iter().map(Option::is_some);
    level.wins_prev.retain(|_| survives.next().unwrap());
    let mut survives = remap.iter().map(Option::is_some);
    level.wins_now.retain(|_| survives.next().unwrap());
    let mut survives = remap.iter().map(Option::is_some);
    level.omega.retain(|_| survives.next().unwrap());
    for slot in assignment.iter_mut() {
        if let Some(c) = *slot {
            *slot = remap[c];
        }
    }
}

/// Densifies an assignment into labels `0..κ` in first-appearance order.
fn dense_labels(assignment: &[Option<usize>]) -> Vec<usize> {
    let k = assignment.iter().map(|slot| slot.map_or(0, |c| c + 1)).max().unwrap_or(0);
    let mut remap: Vec<usize> = vec![usize::MAX; k];
    let mut next = 0usize;
    assignment
        .iter()
        .map(|slot| {
            let c = slot.expect("every object is assigned after a learning pass");
            if remap[c] == usize::MAX {
                remap[c] = next;
                next += 1;
            }
            remap[c]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use categorical_data::Schema;

    fn block_table(n_per: usize) -> CategoricalTable {
        // Two perfectly separated blocks over 4 binary-ish features.
        let mut t = CategoricalTable::new(Schema::uniform(4, 3));
        for _ in 0..n_per {
            t.push_row(&[0, 0, 0, 0]).unwrap();
        }
        for _ in 0..n_per {
            t.push_row(&[2, 2, 2, 2]).unwrap();
        }
        t
    }

    #[test]
    fn empty_table_is_rejected() {
        let t = CategoricalTable::new(Schema::uniform(2, 2));
        assert!(reference_mgcpl(&t, &ReferenceConfig::default()).is_err());
    }

    #[test]
    fn oversized_initial_k_is_rejected() {
        let t = block_table(3);
        let config = ReferenceConfig { initial_k: Some(7), ..ReferenceConfig::default() };
        assert!(reference_mgcpl(&t, &config).is_err());
    }

    #[test]
    fn kappa_is_strictly_decreasing_with_dense_partitions() {
        let t = block_table(20);
        let result = reference_mgcpl(&t, &ReferenceConfig::default()).unwrap();
        assert!(!result.kappa.is_empty());
        assert!(result.kappa.windows(2).all(|w| w[0] > w[1]), "kappa={:?}", result.kappa);
        for (partition, &kj) in result.partitions.iter().zip(&result.kappa) {
            assert_eq!(partition.len(), 40);
            assert_eq!(crate::distinct_labels(partition), kj);
            assert_eq!(partition.iter().copied().max().unwrap() + 1, kj, "labels must be dense");
        }
        assert_eq!(result.sigma(), result.partitions.len());
    }

    #[test]
    fn identical_objects_collapse_to_one_cluster() {
        let mut t = CategoricalTable::new(Schema::uniform(3, 2));
        for _ in 0..30 {
            t.push_row(&[1, 0, 1]).unwrap();
        }
        let result = reference_mgcpl(&t, &ReferenceConfig::default()).unwrap();
        assert_eq!(*result.kappa.last().unwrap(), 1);
    }

    #[test]
    fn separated_blocks_end_near_two_clusters() {
        let t = block_table(30);
        let result = reference_mgcpl(&t, &ReferenceConfig::default()).unwrap();
        let final_k = *result.kappa.last().unwrap();
        assert!((1..=3).contains(&final_k), "kappa={:?}", result.kappa);
    }

    #[test]
    fn winner_and_rival_break_ties_toward_the_lowest_index() {
        assert_eq!(winner_and_rival(&[0.5, 0.5, 0.2]), (0, 1));
        assert_eq!(winner_and_rival(&[0.1, 0.9, 0.9]), (1, 2));
        assert_eq!(winner_and_rival(&[0.3]), (0, usize::MAX));
    }
}
