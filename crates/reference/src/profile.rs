//! Textbook cluster summaries: nested-`Vec` value counts, per-attribute
//! similarity (Eqs. 1–2), and the α/β feature weighting (Eqs. 15–18).
//!
//! Nothing here is shared with `mcdc-core`: counts live in one `Vec` per
//! feature, similarities divide^W multiply by a freshly computed reciprocal
//! per lookup, and every sum runs in ascending feature/value order — the
//! accumulation order the paper's left-to-right sums imply (and the one the
//! optimized kernels document, so cross-tree comparisons are exact).

use categorical_data::{CategoricalTable, MISSING};

/// A cluster's per-feature value-count summary, the `Ψ` counters the
/// paper's similarity and weighting equations read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    /// `counts[r][t]` = members holding value `t` in feature `r`.
    counts: Vec<Vec<u32>>,
    /// `present[r]` = members with a non-missing value in feature `r`.
    present: Vec<u32>,
    /// Member count.
    size: usize,
}

impl Profile {
    /// An empty profile over the given per-feature cardinalities.
    pub fn new(cardinalities: &[usize]) -> Profile {
        Profile {
            counts: cardinalities.iter().map(|&m| vec![0u32; m]).collect(),
            present: vec![0; cardinalities.len()],
            size: 0,
        }
    }

    /// Adds one member row.
    pub fn add(&mut self, row: &[u32]) {
        for (r, &code) in row.iter().enumerate() {
            if code != MISSING {
                self.counts[r][code as usize] += 1;
                self.present[r] += 1;
            }
        }
        self.size += 1;
    }

    /// Removes one member row previously added.
    pub fn remove(&mut self, row: &[u32]) {
        for (r, &code) in row.iter().enumerate() {
            if code != MISSING {
                self.counts[r][code as usize] -= 1;
                self.present[r] -= 1;
            }
        }
        self.size -= 1;
    }

    /// Member count `n_l`.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Whether the cluster has lost all members.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Number of features `d`.
    pub fn n_features(&self) -> usize {
        self.present.len()
    }

    /// Per-attribute similarity `s(x_ir, C_l)` of Eq. (2): the relative
    /// frequency of `code` among the cluster's non-missing values in
    /// feature `r`. Missing query values and empty features score 0.
    pub fn value_similarity(&self, r: usize, code: u32) -> f64 {
        if code == MISSING || self.present[r] == 0 {
            return 0.0;
        }
        // Reciprocal-multiply, the expression shape both trees evaluate.
        self.counts[r][code as usize] as f64 * (1.0 / self.present[r] as f64)
    }

    /// Object–cluster similarity of Eq. (1) as a *raw sum* over features
    /// (ascending `r`); the caller applies the `1/d` mean (or the ω
    /// weights make the sum already normalized, Eq. 14). Returning the raw
    /// sum keeps the reference's scalar expression `prefactor · (sum ·
    /// post_scale)` aligned with the optimized kernels, so score
    /// comparisons are exact rather than ulp-fuzzy.
    pub fn similarity_sum(&self, row: &[u32], weights: Option<&[f64]>) -> f64 {
        let mut acc = 0.0f64;
        match weights {
            Some(weights) => {
                for (r, (&code, &w)) in row.iter().zip(weights).enumerate() {
                    if code != MISSING {
                        acc += w * self.value_similarity(r, code);
                    }
                }
            }
            None => {
                for (r, &code) in row.iter().enumerate() {
                    if code != MISSING {
                        acc += self.value_similarity(r, code);
                    }
                }
            }
        }
        acc
    }

    /// Intra-cluster compactness `β_rl` of Eq. (16):
    /// `(1/n_l) Σ_{x∈C_l} Ψ_{F_r=x_r}(C_l) / Ψ_{F_r≠NULL}(C_l)`, which
    /// collapses to `Σ_t c_t² / (n_l · present_r)`; 0 for empty clusters
    /// or all-missing features.
    pub fn compactness(&self, r: usize) -> f64 {
        if self.size == 0 || self.present[r] == 0 {
            return 0.0;
        }
        let sum_sq: u64 = self.counts[r].iter().map(|&c| c as u64 * c as u64).sum();
        sum_sq as f64 / (self.size as f64 * self.present[r] as f64)
    }
}

/// Whole-table value counts — the `X` side of the inter-cluster difference
/// (the complement distribution `X \ C_l` is obtained by subtraction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalCounts {
    counts: Vec<Vec<u32>>,
    present: Vec<u32>,
}

impl GlobalCounts {
    /// Counts every row of `table`.
    pub fn from_table(table: &CategoricalTable) -> GlobalCounts {
        let cardinalities: Vec<usize> =
            table.schema().cardinalities().iter().map(|&m| m as usize).collect();
        let mut counts: Vec<Vec<u32>> = cardinalities.iter().map(|&m| vec![0u32; m]).collect();
        let mut present = vec![0u32; cardinalities.len()];
        for row in table.rows() {
            for (r, &code) in row.iter().enumerate() {
                if code != MISSING {
                    counts[r][code as usize] += 1;
                    present[r] += 1;
                }
            }
        }
        GlobalCounts { counts, present }
    }
}

/// Inter-cluster difference `α_rl` of Eq. (15): the Euclidean distance
/// between feature `r`'s value distribution inside the cluster and in the
/// complement `X \ C_l`, scaled by `1/√2` into `[0, 1]`.
pub fn inter_cluster_difference(profile: &Profile, global: &GlobalCounts, r: usize) -> f64 {
    let in_present = profile.present[r] as f64;
    let out_present = global.present[r] as f64 - in_present;
    let inv_in = if in_present > 0.0 { 1.0 / in_present } else { 0.0 };
    let inv_out = if out_present > 0.0 { 1.0 / out_present } else { 0.0 };
    let mut sum_sq = 0.0;
    for (&in_count, &total_count) in profile.counts[r].iter().zip(&global.counts[r]) {
        let p_in = in_count as f64 * inv_in;
        let p_out = (total_count as f64 - in_count as f64) * inv_out;
        let diff = p_in - p_out;
        sum_sq += diff * diff;
    }
    (sum_sq.sqrt() / std::f64::consts::SQRT_2).clamp(0.0, 1.0)
}

/// Alias for Eq. (16)'s `β_rl` with the free-function shape of `α_rl`.
pub fn intra_cluster_compactness(profile: &Profile, r: usize) -> f64 {
    profile.compactness(r)
}

/// The per-cluster weight vector `ω_l` of Eq. (18): `H_rl = α_rl · β_rl`
/// (Eq. 17) normalized to sum to 1, falling back to uniform weights when
/// every `H_rl` vanishes.
pub fn feature_weights(profile: &Profile, global: &GlobalCounts) -> Vec<f64> {
    let d = profile.n_features();
    let mut weights: Vec<f64> = (0..d)
        .map(|r| inter_cluster_difference(profile, global, r) * profile.compactness(r))
        .collect();
    let total: f64 = weights.iter().sum();
    if total <= f64::EPSILON {
        weights.fill(1.0 / d as f64);
        return weights;
    }
    let inv_total = 1.0 / total;
    for w in weights.iter_mut() {
        *w *= inv_total;
    }
    weights
}

#[cfg(test)]
mod tests {
    use super::*;
    use categorical_data::Schema;

    /// Feature 0 separates two groups perfectly; feature 1 is constant.
    fn discriminative_table() -> CategoricalTable {
        let mut t = CategoricalTable::new(Schema::uniform(2, 2));
        for _ in 0..4 {
            t.push_row(&[0, 0]).unwrap();
        }
        for _ in 0..4 {
            t.push_row(&[1, 0]).unwrap();
        }
        t
    }

    #[test]
    fn similarity_mean_matches_the_worked_example() {
        // Profile of {[0,2], [0,1]} over cardinality-4 features; query
        // [0,1]: s = (2/2 + 1/2) / 2 = 3/4 per Eqs. (1)–(2).
        let mut p = Profile::new(&[4, 4]);
        p.add(&[0, 2]);
        p.add(&[0, 1]);
        let mean = p.similarity_sum(&[0, 1], None) * (1.0 / 2.0);
        assert!((mean - 0.75).abs() < 1e-15, "mean={mean}");
    }

    #[test]
    fn missing_values_score_zero_and_skip_the_denominator() {
        let mut p = Profile::new(&[2]);
        p.add(&[0]);
        p.add(&[MISSING]);
        // One of two members is present in feature 0, so s(0) = 1/1.
        assert_eq!(p.value_similarity(0, 0), 1.0);
        assert_eq!(p.value_similarity(0, MISSING), 0.0);
        assert_eq!(p.size(), 2);
    }

    #[test]
    fn add_then_remove_restores_the_empty_profile() {
        let mut p = Profile::new(&[3, 3]);
        let fresh = p.clone();
        p.add(&[1, 2]);
        p.add(&[0, MISSING]);
        p.remove(&[1, 2]);
        p.remove(&[0, MISSING]);
        assert_eq!(p, fresh);
        assert!(p.is_empty());
    }

    #[test]
    fn alpha_is_one_for_a_perfect_separator_and_zero_for_a_constant() {
        let table = discriminative_table();
        let global = GlobalCounts::from_table(&table);
        let mut cluster = Profile::new(&[2, 2]);
        for i in 0..4 {
            cluster.add(table.row(i));
        }
        let a0 = inter_cluster_difference(&cluster, &global, 0);
        let a1 = inter_cluster_difference(&cluster, &global, 1);
        assert!((a0 - 1.0).abs() < 1e-12, "a0={a0}");
        assert!(a1.abs() < 1e-12, "a1={a1}");
    }

    #[test]
    fn beta_is_one_for_a_pure_feature_and_half_for_an_even_split() {
        // Two members agreeing in feature 0 (2²/(2·2) = 1) and split in
        // feature 1 ((1²+1²)/(2·2) = 1/2) — Eq. (16) by hand.
        let mut p = Profile::new(&[2, 2]);
        p.add(&[1, 0]);
        p.add(&[1, 1]);
        assert_eq!(p.compactness(0), 1.0);
        assert_eq!(p.compactness(1), 0.5);
        assert_eq!(intra_cluster_compactness(&p, 0), 1.0);
    }

    #[test]
    fn weights_normalize_and_favor_the_discriminative_feature() {
        let table = discriminative_table();
        let global = GlobalCounts::from_table(&table);
        let mut cluster = Profile::new(&[2, 2]);
        for i in 0..4 {
            cluster.add(table.row(i));
        }
        let w = feature_weights(&cluster, &global);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w[0] > 0.99, "w={w:?}");
        // A cluster indistinguishable from the global distribution falls
        // back to uniform weights.
        let mut mixed = Profile::new(&[2, 2]);
        for &i in &[0usize, 1, 4, 5] {
            mixed.add(table.row(i));
        }
        assert_eq!(feature_weights(&mixed, &global), vec![0.5, 0.5]);
    }
}
