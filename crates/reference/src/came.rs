//! Reference CAME: the cluster-aggregation refinement of Alg. 2 — a
//! θ-weighted k-modes over the Γ encoding, transcribed from the paper with
//! no parallel chunking, no dirty-cluster tracking, no margin caching.

use categorical_data::{CategoricalTable, MISSING};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Refinement iterations before giving up on the (Q, Z, Θ) fixpoint
/// (matches the production default).
const MAX_ITERATIONS: usize = 100;

/// Output of the reference CAME stage.
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceCame {
    /// Final labels into `0..k`.
    pub labels: Vec<usize>,
    /// Per-granularity feature weights Θ (sums to 1).
    pub theta: Vec<f64>,
    /// The final cluster modes, one `σ`-length row per cluster.
    pub modes: Vec<Vec<u32>>,
    /// Iterations until the fixpoint (or the cap).
    pub iterations: usize,
}

/// Runs the reference aggregation on a Γ `encoding`, seeking `k` clusters.
///
/// # Errors
///
/// Returns a description of the invalid input (`k` outside `1..=n` or an
/// empty encoding).
pub fn reference_came(
    encoding: &CategoricalTable,
    k: usize,
    weighted: bool,
    seed: u64,
) -> Result<ReferenceCame, String> {
    let n = encoding.n_rows();
    if n == 0 {
        return Err("empty encoding".into());
    }
    if k == 0 || k > n {
        return Err(format!("k {k} out of 1..={n}"));
    }
    let sigma = encoding.n_features();
    let mut theta = vec![1.0 / sigma as f64; sigma];
    let mut modes = initial_modes(encoding, k, seed);
    let mut labels = vec![usize::MAX; n];
    let mut iterations = 0;

    for _ in 0..MAX_ITERATIONS {
        iterations += 1;

        // Step 1 (Eq. 20): fix Z and Θ, recompute the partition Q — each
        // object joins its θ-Hamming-nearest mode.
        let mut changed = false;
        for (i, label) in labels.iter_mut().enumerate() {
            let best = nearest_mode(encoding.row(i), &modes, &theta);
            if *label != best {
                *label = best;
                changed = true;
            }
        }

        // Keep exactly k clusters populated: any emptied cluster is
        // re-seeded on the object farthest from its own mode.
        reseed_empty_clusters(encoding, &mut labels, k, &theta, &modes);

        // Step 2 (Eqs. 21–22): fix Q, update the modes Z and weights Θ.
        modes = modes_of_partition(encoding, &labels, k);
        if weighted {
            theta = update_theta(encoding, &labels, &modes, sigma);
        }

        if !changed {
            break;
        }
    }

    Ok(ReferenceCame { labels, theta, modes, iterations })
}

/// θ-weighted Hamming distance of Eq. (20)'s inner sum: matching
/// non-missing values cost 0, everything else costs the feature's θ.
pub fn weighted_hamming(row: &[u32], mode: &[u32], theta: &[f64]) -> f64 {
    row.iter()
        .zip(mode)
        .zip(theta)
        .map(|((&a, &b), &w)| if a == b && a != MISSING { 0.0 } else { w })
        .sum()
}

/// Index of the θ-Hamming-nearest mode, lowest cluster index on ties.
fn nearest_mode(row: &[u32], modes: &[Vec<u32>], theta: &[f64]) -> usize {
    let mut best = 0usize;
    let mut best_dist = f64::INFINITY;
    for (l, mode) in modes.iter().enumerate() {
        let dist = weighted_hamming(row, mode, theta);
        if dist < best_dist {
            best_dist = dist;
            best = l;
        }
    }
    best
}

/// Initial modes: the paper's granularity-guided seeding — the modes of the
/// `k` largest clusters of the coarsest granularity still offering at least
/// `k` clusters — with the classic random-objects fallback when no
/// granularity is wide enough.
fn initial_modes(encoding: &CategoricalTable, k: usize, seed: u64) -> Vec<Vec<u32>> {
    if let Some(modes) = granularity_guided_modes(encoding, k) {
        return modes;
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..encoding.n_rows()).collect();
    indices.shuffle(&mut rng);
    indices.truncate(k);
    indices.iter().map(|&i| encoding.row(i).to_vec()).collect()
}

/// The guided-seeding half of [`initial_modes`]: groups objects by their
/// label in the guiding granularity, keeps the `k` largest groups (stable
/// on ties), and returns each group's per-feature mode. `None` when no
/// granularity has ≥ `k` clusters or a kept group is empty.
fn granularity_guided_modes(encoding: &CategoricalTable, k: usize) -> Option<Vec<Vec<u32>>> {
    let n = encoding.n_rows();
    let sigma = encoding.n_features();
    // Granularities are ordered finest → coarsest; scan from the coarse end.
    let j = (0..sigma).rev().find(|&j| encoding.schema().domain(j).cardinality() as usize >= k)?;
    let kj = encoding.schema().domain(j).cardinality() as usize;
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); kj];
    for i in 0..n {
        members[encoding.value(i, j) as usize].push(i);
    }
    members.sort_by_key(|m| std::cmp::Reverse(m.len()));
    members.truncate(k);
    if members.iter().any(Vec::is_empty) {
        return None;
    }
    Some(members.iter().map(|m| mode_of_members(encoding, m)).collect())
}

/// Per-feature most frequent value over a member set, ties resolving to the
/// lowest code, features with no present values to code 0.
fn mode_of_members(encoding: &CategoricalTable, members: &[usize]) -> Vec<u32> {
    let sigma = encoding.n_features();
    let mut mode = Vec::with_capacity(sigma);
    for r in 0..sigma {
        let width = encoding.schema().domain(r).cardinality() as usize;
        let mut counts = vec![0u32; width];
        for &i in members {
            let code = encoding.value(i, r);
            if code != MISSING {
                counts[code as usize] += 1;
            }
        }
        let best = counts
            .iter()
            .enumerate()
            .max_by(|(ta, ca), (tb, cb)| ca.cmp(cb).then(tb.cmp(ta)))
            .map_or(0, |(t, _)| t as u32);
        mode.push(best);
    }
    mode
}

/// Eq. (21): the mode of every cluster under the current partition.
fn modes_of_partition(encoding: &CategoricalTable, labels: &[usize], k: usize) -> Vec<Vec<u32>> {
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &l) in labels.iter().enumerate() {
        members[l].push(i);
    }
    members.iter().map(|m| mode_of_members(encoding, m)).collect()
}

/// Eq. (22): θ_r proportional to the number of objects agreeing with their
/// cluster's mode in granularity `r`; uniform when nothing agrees.
fn update_theta(
    encoding: &CategoricalTable,
    labels: &[usize],
    modes: &[Vec<u32>],
    sigma: usize,
) -> Vec<f64> {
    let mut intra = vec![0u64; sigma];
    for (i, &l) in labels.iter().enumerate() {
        let row = encoding.row(i);
        let mode = &modes[l];
        for (slot, (&a, &b)) in intra.iter_mut().zip(row.iter().zip(mode)) {
            if a == b && a != MISSING {
                *slot += 1;
            }
        }
    }
    let total: u64 = intra.iter().sum();
    if total == 0 {
        return vec![1.0 / sigma as f64; sigma];
    }
    let total = total as f64;
    intra.iter().map(|&v| v as f64 / total).collect()
}

/// Moves the farthest objects into any emptied cluster so exactly `k`
/// clusters stay populated: scanning clusters in index order, each empty
/// one takes the object farthest from its own mode among clusters that can
/// spare a member (size > 1), first-found winning distance ties.
fn reseed_empty_clusters(
    encoding: &CategoricalTable,
    labels: &mut [usize],
    k: usize,
    theta: &[f64],
    modes: &[Vec<u32>],
) {
    let mut sizes = vec![0usize; k];
    for &l in labels.iter() {
        sizes[l] += 1;
    }
    for l in 0..k {
        if sizes[l] > 0 {
            continue;
        }
        let mut worst: Option<(usize, f64)> = None;
        for (i, &li) in labels.iter().enumerate() {
            if sizes[li] <= 1 {
                continue;
            }
            let dist = weighted_hamming(encoding.row(i), &modes[li], theta);
            if worst.is_none_or(|(_, w)| dist > w) {
                worst = Some((i, dist));
            }
        }
        if let Some((i, _)) = worst {
            sizes[labels[i]] -= 1;
            labels[i] = l;
            sizes[l] = 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode_granularities;

    fn two_granularities() -> CategoricalTable {
        // 8 objects: fine = 4 clusters of 2, coarse = 2 clusters of 4.
        let fine = vec![0usize, 0, 1, 1, 2, 2, 3, 3];
        let coarse = vec![0usize, 0, 0, 0, 1, 1, 1, 1];
        encode_granularities(&[fine, coarse], &[4, 2]).unwrap()
    }

    #[test]
    fn weighted_hamming_matches_the_worked_example() {
        // Rows [0, 1] vs mode [0, 2] under θ = (0.3, 0.7): feature 0
        // matches (cost 0), feature 1 differs (cost 0.7).
        assert_eq!(weighted_hamming(&[0, 1], &[0, 2], &[0.3, 0.7]), 0.7);
        // A missing value never matches, even against itself.
        assert_eq!(weighted_hamming(&[MISSING], &[MISSING], &[0.4]), 0.4);
        assert_eq!(weighted_hamming(&[1, 1], &[1, 1], &[0.3, 0.7]), 0.0);
    }

    #[test]
    fn recovers_the_matching_granularity_for_each_k() {
        let encoding = two_granularities();
        let coarse = reference_came(&encoding, 2, true, 0).unwrap();
        assert_eq!(coarse.labels[0], coarse.labels[3]);
        assert_eq!(coarse.labels[4], coarse.labels[7]);
        assert_ne!(coarse.labels[0], coarse.labels[4]);
        let fine = reference_came(&encoding, 4, true, 0).unwrap();
        assert_eq!(fine.labels[0], fine.labels[1]);
        assert_ne!(fine.labels[0], fine.labels[2]);
        assert_eq!(crate::distinct_labels(&fine.labels), 4);
    }

    #[test]
    fn theta_sums_to_one_and_modes_have_sigma_features() {
        let encoding = two_granularities();
        let result = reference_came(&encoding, 2, true, 0).unwrap();
        assert!((result.theta.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(result.modes.len(), 2);
        assert!(result.modes.iter().all(|m| m.len() == 2));
        assert!(result.iterations >= 1);
    }

    #[test]
    fn unweighted_mode_keeps_theta_uniform() {
        let encoding = two_granularities();
        let result = reference_came(&encoding, 2, false, 0).unwrap();
        assert_eq!(result.theta, vec![0.5, 0.5]);
    }

    #[test]
    fn invalid_k_is_rejected() {
        let encoding = two_granularities();
        assert!(reference_came(&encoding, 0, true, 0).is_err());
        assert!(reference_came(&encoding, 9, true, 0).is_err());
    }

    #[test]
    fn k_equal_n_yields_singletons() {
        let encoding = encode_granularities(&[vec![0, 1, 2]], &[3]).unwrap();
        let result = reference_came(&encoding, 3, true, 0).unwrap();
        assert_eq!(crate::distinct_labels(&result.labels), 3);
    }
}
