//! The *reference* MCDC: a slow, obviously-correct transcription of the
//! paper's pseudocode (MGCPL, Alg. 1; CAME, Alg. 2), kept deliberately free
//! of every optimization the production tree carries — no CSR profiles, no
//! SoA cohort, no fused or value-major scoring kernels, no lazy pruning, no
//! replica-merge execution. Nested `Vec`s, textbook per-attribute
//! similarity, one object at a time.
//!
//! The crate exists as the independent oracle for the differential
//! conformance harness (`conformance` bin in `mcdc-bench`, DESIGN.md §10):
//! the optimized tree's serial configurations must reproduce this
//! implementation's partitions bit for bit, so a shared misreading of the
//! paper in the optimized kernels cannot silently pass the test suite.
//!
//! Two disciplines keep the oracle honest *and* comparable:
//!
//! 1. **Structural independence** — every data structure and loop here is
//!    written from the paper's equations, not ported from `mcdc-core`.
//! 2. **Decision-level arithmetic parity** — where an equation leaves
//!    floating-point freedom (association of a mean, reciprocal versus
//!    division), this crate evaluates the *same scalar expression shapes*
//!    the optimized kernels document (`prefactor * (acc * post_scale)`,
//!    `w * (count * (1/present))`, ascending-feature accumulation), so an
//!    argmax tie broken one way here and the other way there is a real
//!    semantic divergence, never an ulp artifact. See DESIGN.md §10
//!    "Conformance & gating".

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod came;
mod mgcpl;
mod profile;

pub use came::{reference_came, ReferenceCame};
pub use mgcpl::{reference_mgcpl, ReferenceMgcpl};
pub use profile::{
    feature_weights, inter_cluster_difference, intra_cluster_compactness, GlobalCounts, Profile,
};

use categorical_data::{CategoricalTable, FeatureDomain, Schema};

/// Configuration of a reference run: the subset of the paper's knobs the
/// optimized pipeline's *serial* configurations can map onto.
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceConfig {
    /// Learning rate `η` of Eqs. (12)–(13). Paper default 0.03.
    pub learning_rate: f64,
    /// Initial cluster count `k₀`; `None` = the paper's `√n` heuristic.
    pub initial_k: Option<usize>,
    /// ω feature weighting in MGCPL (Eqs. 14–18). Paper default on.
    pub weighted_similarity: bool,
    /// θ feature weighting in CAME (Eqs. 21–22). Paper default on.
    pub came_weighted: bool,
    /// Carry δ/ω across granularity levels instead of the Alg. 1 step-13
    /// cold reset (mirrors the optimized tree's `WarmStart::Carry`).
    pub carry_warm_start: bool,
    /// Seed for the two randomized choices (MGCPL seeding, per-pass
    /// presentation order; CAME's random-init fallback).
    pub seed: u64,
}

impl Default for ReferenceConfig {
    fn default() -> Self {
        ReferenceConfig {
            learning_rate: 0.03,
            initial_k: None,
            weighted_similarity: true,
            came_weighted: true,
            carry_warm_start: false,
            seed: 0,
        }
    }
}

/// Output of the full reference pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceMcdc {
    /// Final `k`-cluster labels (CAME over the Γ encoding).
    pub labels: Vec<usize>,
    /// The MGCPL stage output (multi-granular partitions + κ).
    pub mgcpl: ReferenceMgcpl,
    /// The CAME stage output (labels, θ, iteration count).
    pub came: ReferenceCame,
}

/// Runs the full reference pipeline: MGCPL (Alg. 1) → Γ encoding → CAME
/// (Alg. 2), partitioning `table` into `k` clusters.
///
/// # Errors
///
/// Returns a description of the invalid input (empty table, `k` out of
/// `1..=n`, configured `k₀` out of `1..=n`).
pub fn reference_mcdc(
    table: &CategoricalTable,
    k: usize,
    config: &ReferenceConfig,
) -> Result<ReferenceMcdc, String> {
    let mgcpl = reference_mgcpl(table, config)?;
    let encoding = encode_granularities(&mgcpl.partitions, &mgcpl.kappa)?;
    let came = reference_came(&encoding, k, config.came_weighted, config.seed)?;
    Ok(ReferenceMcdc { labels: came.labels.clone(), mgcpl, came })
}

/// Builds the Γ encoding of the multi-granular partitions: object `i`'s
/// value in feature `j` is its cluster label in granularity `j` (finest
/// first). Degenerate single-cluster granularities carry no affiliation
/// information and are dropped; when every granularity is degenerate one is
/// kept so the encoding is never empty.
///
/// # Errors
///
/// Returns an error when `partitions` is empty or ragged.
pub fn encode_granularities(
    partitions: &[Vec<usize>],
    kappa: &[usize],
) -> Result<CategoricalTable, String> {
    if partitions.is_empty() || partitions[0].is_empty() {
        return Err("no partitions to encode".into());
    }
    let n = partitions[0].len();
    if partitions.iter().any(|p| p.len() != n) {
        return Err("ragged partitions".into());
    }
    let informative: Vec<&Vec<usize>> =
        partitions.iter().zip(kappa).filter(|(_, &kj)| kj >= 2).map(|(p, _)| p).collect();
    let kept: Vec<&Vec<usize>> =
        if informative.is_empty() { vec![&partitions[0]] } else { informative };
    let domains: Vec<FeatureDomain> = kept
        .iter()
        .enumerate()
        .map(|(j, labels)| {
            let width = labels.iter().copied().max().unwrap_or(0) + 1;
            FeatureDomain::anonymous(format!("granularity{j}"), width as u32)
        })
        .collect();
    let mut encoding = CategoricalTable::new(Schema::new(domains));
    let mut row: Vec<u32> = Vec::with_capacity(kept.len());
    for i in 0..n {
        row.clear();
        row.extend(kept.iter().map(|labels| labels[i] as u32));
        encoding.push_row(&row).map_err(|e| e.to_string())?;
    }
    Ok(encoding)
}

/// Shannon entropy (nats) of a partition's cluster-size distribution,
/// computed as `H = ln n − (Σ c·ln c)/n` over the per-label counts in
/// ascending label order — the same count-stream form the data layer uses,
/// so cross-implementation entropy checks can demand exact equality.
pub fn partition_entropy(labels: &[usize]) -> f64 {
    if labels.is_empty() {
        return 0.0;
    }
    let k = labels.iter().copied().max().unwrap_or(0) + 1;
    let mut counts = vec![0u64; k];
    for &l in labels {
        counts[l] += 1;
    }
    let mut total = 0u64;
    let mut weighted_log = 0.0f64;
    for &c in &counts {
        if c > 0 {
            total += c;
            weighted_log += c as f64 * (c as f64).ln();
        }
    }
    let n = total as f64;
    (n.ln() - weighted_log / n).max(0.0)
}

/// Number of distinct labels in a partition — the `κ_j` a granularity's
/// label vector implies, for consistency checks against the recorded κ.
pub fn distinct_labels(labels: &[usize]) -> usize {
    let mut seen: Vec<bool> = Vec::new();
    for &l in labels {
        if l >= seen.len() {
            seen.resize(l + 1, false);
        }
        seen[l] = true;
    }
    seen.iter().filter(|&&s| s).count()
}

/// The rival-penalized sigmoid weight `u = 1 / (1 + e^{−10δ + 5})` of
/// Eq. (11): ≈0 at δ = 0, ½ at δ = ½, ≈1 at δ = 1.
pub fn sigmoid_weight(delta: f64) -> f64 {
    1.0 / (1.0 + (-10.0 * delta + 5.0).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_midpoint_and_saturation_match_eq_11() {
        // Worked quantities of Eq. (11): u(1/2) = 1/2 exactly by symmetry;
        // the endpoints saturate to u(0) = 1/(1+e^5), u(1) = 1/(1+e^-5).
        assert!((sigmoid_weight(0.5) - 0.5).abs() < 1e-12);
        assert!((sigmoid_weight(0.0) - 1.0 / (1.0 + 5.0f64.exp())).abs() < 1e-15);
        assert!((sigmoid_weight(1.0) - 1.0 / (1.0 + (-5.0f64).exp())).abs() < 1e-15);
        assert!(sigmoid_weight(0.0) < 0.01 && sigmoid_weight(1.0) > 0.99);
    }

    #[test]
    fn entropy_of_balanced_binary_partition_is_ln2() {
        assert!((partition_entropy(&[0, 1, 0, 1]) - (2.0f64).ln()).abs() < 1e-15);
        assert_eq!(partition_entropy(&[0, 0, 0]), 0.0);
        assert_eq!(partition_entropy(&[]), 0.0);
    }

    #[test]
    fn entropy_of_skewed_partition_matches_hand_computation() {
        // Counts (3, 1): H = ln 4 − (3·ln 3 + 1·ln 1)/4.
        let expected = (4.0f64).ln() - 3.0 * (3.0f64).ln() / 4.0;
        assert!((partition_entropy(&[0, 0, 0, 1]) - expected).abs() < 1e-15);
    }

    #[test]
    fn distinct_labels_counts_every_label_once() {
        assert_eq!(distinct_labels(&[0, 2, 2, 1]), 3);
        assert_eq!(distinct_labels(&[5]), 1);
        assert_eq!(distinct_labels(&[]), 0);
    }

    #[test]
    fn encoding_is_columnwise_and_drops_degenerate_granularities() {
        let fine = vec![0usize, 1, 0];
        let constant = vec![0usize, 0, 0];
        let encoding = encode_granularities(&[fine.clone(), constant.clone()], &[2, 1]).unwrap();
        assert_eq!(encoding.n_features(), 1, "single-cluster granularity must be dropped");
        assert_eq!(encoding.row(1), &[1]);
        let all_degenerate = encode_granularities(&[constant], &[1]).unwrap();
        assert_eq!(all_degenerate.n_features(), 1, "never encode zero features");
    }
}
