//! Property-based tests of the validity indices against each other and
//! against brute-force definitions.

use cluster_eval::{
    accuracy, adjusted_rand_index, fowlkes_mallows, rand_index, wilcoxon_signed_rank,
    ContingencyTable, PairCounts,
};
use proptest::prelude::*;

fn labels(n: usize, k: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..k, n)
}

/// Brute-force pair agreement count straight from the definition.
fn brute_pair_counts(a: &[usize], b: &[usize]) -> (u64, u64, u64, u64) {
    let (mut both, mut first, mut second, mut neither) = (0u64, 0u64, 0u64, 0u64);
    for i in 0..a.len() {
        for j in (i + 1)..a.len() {
            match (a[i] == a[j], b[i] == b[j]) {
                (true, true) => both += 1,
                (true, false) => first += 1,
                (false, true) => second += 1,
                (false, false) => neither += 1,
            }
        }
    }
    (both, first, second, neither)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pair_counts_match_brute_force(a in labels(20, 3), b in labels(20, 4)) {
        let pc = PairCounts::from_labels(&a, &b);
        let (both, first, second, neither) = brute_pair_counts(&a, &b);
        prop_assert_eq!(pc.together_both, both);
        prop_assert_eq!(pc.together_first, first);
        prop_assert_eq!(pc.together_second, second);
        prop_assert_eq!(pc.separate_both, neither);
    }

    #[test]
    fn rand_index_from_pair_counts(a in labels(15, 3), b in labels(15, 3)) {
        let (both, first, second, neither) = brute_pair_counts(&a, &b);
        let expected = (both + neither) as f64 / (both + first + second + neither) as f64;
        prop_assert!((rand_index(&a, &b) - expected).abs() < 1e-12);
    }

    #[test]
    fn accuracy_upper_bounds_any_fixed_mapping(a in labels(25, 3), b in labels(25, 3)) {
        // ACC uses the optimal mapping, so it is at least the score of the
        // identity mapping.
        let identity_score =
            a.iter().zip(&b).filter(|(x, y)| x == y).count() as f64 / a.len() as f64;
        prop_assert!(accuracy(&a, &b) + 1e-12 >= identity_score);
    }

    #[test]
    fn contingency_marginals_sum_to_n(a in labels(30, 4), b in labels(30, 5)) {
        let t = ContingencyTable::from_labels(&a, &b);
        prop_assert_eq!(t.row_sums().iter().sum::<u64>(), 30);
        prop_assert_eq!(t.col_sums().iter().sum::<u64>(), 30);
        let cell_total: u64 = t.cells().map(|(_, _, c)| c).sum();
        prop_assert_eq!(cell_total, 30);
    }

    #[test]
    fn ari_and_fm_agree_on_perfection(a in labels(20, 4)) {
        prop_assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-9);
        prop_assert!((fowlkes_mallows(&a, &a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn wilcoxon_p_value_is_a_probability(
        x in proptest::collection::vec(0.0f64..1.0, 8),
        y in proptest::collection::vec(0.0f64..1.0, 8),
    ) {
        let r = wilcoxon_signed_rank(&x, &y);
        prop_assert!((0.0..=1.0).contains(&r.p_value));
        prop_assert!(r.w_plus >= 0.0 && r.w_minus >= 0.0);
        let total = r.n_effective as f64 * (r.n_effective as f64 + 1.0) / 2.0;
        prop_assert!((r.w_plus + r.w_minus - total).abs() < 1e-9);
    }

    #[test]
    fn wilcoxon_shift_direction_is_detected(
        base in proptest::collection::vec(0.0f64..1.0, 10),
        shift in 0.05f64..0.5,
    ) {
        let shifted: Vec<f64> = base.iter().map(|v| v + shift).collect();
        let r = wilcoxon_signed_rank(&shifted, &base);
        prop_assert!(r.first_is_better());
        prop_assert_eq!(r.w_minus, 0.0);
    }
}
