use crate::{average_ranks, normal_cdf};

/// How the Wilcoxon p-value was computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WilcoxonMethod {
    /// Exact null distribution (enumerated for small effective n).
    Exact,
    /// Normal approximation with tie and continuity corrections.
    NormalApproximation,
    /// All paired differences were zero; the test is vacuous (p = 1).
    Degenerate,
}

/// Result of a two-tailed Wilcoxon signed-rank test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WilcoxonResult {
    /// Test statistic `T = min(W⁺, W⁻)`.
    pub statistic: f64,
    /// Sum of ranks of positive differences (`x > y`).
    pub w_plus: f64,
    /// Sum of ranks of negative differences (`x < y`).
    pub w_minus: f64,
    /// Number of non-zero paired differences actually ranked.
    pub n_effective: usize,
    /// Two-tailed p-value.
    pub p_value: f64,
    /// How the p-value was obtained.
    pub method: WilcoxonMethod,
}

impl WilcoxonResult {
    /// Whether the null hypothesis (no systematic difference) is rejected at
    /// significance level `alpha`. The paper's Table IV uses `alpha = 0.1`
    /// (90% confidence).
    pub fn is_significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }

    /// `true` when `x` tends to exceed `y` (`W⁺ > W⁻`), i.e. the first
    /// method outperforms under a higher-is-better score.
    pub fn first_is_better(&self) -> bool {
        self.w_plus > self.w_minus
    }
}

/// Effective-n threshold below which the exact null distribution is used.
const EXACT_LIMIT: usize = 20;

/// Two-tailed Wilcoxon signed-rank test on paired samples, as used for the
/// paper's Table IV significance analysis (MCDC+F. versus each counterpart
/// across the eight data sets).
///
/// Zero differences are dropped (Wilcoxon's original treatment); tied
/// absolute differences receive averaged ranks. For `n_effective ≤ 20` the
/// exact permutation null distribution is enumerated; beyond that a normal
/// approximation with tie and continuity corrections is used.
///
/// # Panics
///
/// Panics if the slices have different lengths or contain NaN.
///
/// # Example
///
/// ```
/// use cluster_eval::wilcoxon_signed_rank;
///
/// let ours = [0.9, 0.8, 0.7, 0.9, 0.8];
/// let theirs = [0.8, 0.7, 0.6, 0.8, 0.7];
/// let result = wilcoxon_signed_rank(&ours, &theirs);
/// assert!((result.p_value - 0.0625).abs() < 1e-12); // matches scipy (exact)
/// assert!(result.first_is_better());
/// ```
pub fn wilcoxon_signed_rank(x: &[f64], y: &[f64]) -> WilcoxonResult {
    assert_eq!(x.len(), y.len(), "paired samples must have equal length");
    let diffs: Vec<f64> = x
        .iter()
        .zip(y)
        .map(|(&a, &b)| {
            assert!(!a.is_nan() && !b.is_nan(), "samples must not contain NaN");
            a - b
        })
        .filter(|d| *d != 0.0)
        .collect();
    let n = diffs.len();
    if n == 0 {
        return WilcoxonResult {
            statistic: 0.0,
            w_plus: 0.0,
            w_minus: 0.0,
            n_effective: 0,
            p_value: 1.0,
            method: WilcoxonMethod::Degenerate,
        };
    }

    let abs: Vec<f64> = diffs.iter().map(|d| d.abs()).collect();
    let ranks = average_ranks(&abs);
    let w_plus: f64 = ranks.iter().zip(&diffs).filter(|(_, &d)| d > 0.0).map(|(&r, _)| r).sum();
    let total = n as f64 * (n as f64 + 1.0) / 2.0;
    let w_minus = total - w_plus;
    let statistic = w_plus.min(w_minus);

    let (p_value, method) = if n <= EXACT_LIMIT {
        (exact_p_value(&ranks, statistic), WilcoxonMethod::Exact)
    } else {
        (approx_p_value(&ranks, statistic, n), WilcoxonMethod::NormalApproximation)
    };

    WilcoxonResult {
        statistic,
        w_plus,
        w_minus,
        n_effective: n,
        p_value: p_value.clamp(0.0, 1.0),
        method,
    }
}

/// Exact two-tailed p-value: `2 · P(W ≤ statistic)` under the uniform sign
/// model, computed by dynamic programming over doubled (integer) ranks.
fn exact_p_value(ranks: &[f64], statistic: f64) -> f64 {
    let doubled: Vec<usize> = ranks.iter().map(|&r| (2.0 * r).round() as usize).collect();
    let total: usize = doubled.iter().sum();
    // counts[s] = number of sign assignments with doubled W+ equal to s.
    let mut counts = vec![0.0f64; total + 1];
    counts[0] = 1.0;
    for &r in &doubled {
        for s in (r..=total).rev() {
            counts[s] += counts[s - r];
        }
    }
    let threshold = (2.0 * statistic).round() as usize;
    let tail: f64 = counts[..=threshold.min(total)].iter().sum();
    let all: f64 = counts.iter().sum();
    (2.0 * tail / all).min(1.0)
}

/// Normal approximation with tie correction and 0.5 continuity correction.
fn approx_p_value(ranks: &[f64], statistic: f64, n: usize) -> f64 {
    let nf = n as f64;
    let mean = nf * (nf + 1.0) / 4.0;
    // Tie correction: group equal ranks.
    let mut sorted = ranks.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("ranks are finite"));
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j + 1 < sorted.len() && sorted[j + 1] == sorted[i] {
            j += 1;
        }
        let t = (j - i + 1) as f64;
        tie_term += t * t * t - t;
        i = j + 1;
    }
    let variance = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0 - tie_term / 48.0;
    if variance <= 0.0 {
        return 1.0;
    }
    let z = (statistic - mean + 0.5) / variance.sqrt();
    2.0 * normal_cdf(z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_zero_differences_are_degenerate() {
        let r = wilcoxon_signed_rank(&[1.0, 2.0], &[1.0, 2.0]);
        assert_eq!(r.method, WilcoxonMethod::Degenerate);
        assert_eq!(r.p_value, 1.0);
        assert!(!r.is_significant(0.1));
    }

    #[test]
    fn matches_scipy_uniform_shift() {
        // scipy.stats.wilcoxon([1..5], [2..6]) => statistic 0, p 0.0625.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 3.0, 4.0, 5.0, 6.0];
        let r = wilcoxon_signed_rank(&x, &y);
        assert_eq!(r.statistic, 0.0);
        assert!((r.p_value - 0.0625).abs() < 1e-12);
        assert!(!r.first_is_better());
    }

    #[test]
    fn matches_scipy_mixed_signs() {
        // scipy.stats.wilcoxon(d) with
        // d = [6, 8, 14, 16, 23, 24, 28, 29, 41, -48, 49, 56, 60, -67, 75]
        // => statistic 24, p = 0.041259765625 (exact).
        let d = [
            6.0, 8.0, 14.0, 16.0, 23.0, 24.0, 28.0, 29.0, 41.0, -48.0, 49.0, 56.0, 60.0, -67.0,
            75.0,
        ];
        let zeros = vec![0.0; d.len()];
        let r = wilcoxon_signed_rank(&d, &zeros);
        assert_eq!(r.statistic, 24.0);
        assert!((r.p_value - 0.041259765625).abs() < 1e-12, "p={}", r.p_value);
        assert!(r.first_is_better());
    }

    #[test]
    fn symmetric_inputs_give_symmetric_statistics() {
        let x = [0.9, 0.4, 0.7, 0.3];
        let y = [0.1, 0.8, 0.2, 0.6];
        let a = wilcoxon_signed_rank(&x, &y);
        let b = wilcoxon_signed_rank(&y, &x);
        assert_eq!(a.p_value, b.p_value);
        assert_eq!(a.w_plus, b.w_minus);
    }

    #[test]
    fn large_sample_uses_normal_approximation() {
        let x: Vec<f64> = (0..30).map(|i| i as f64 + if i % 3 == 0 { 2.0 } else { 0.5 }).collect();
        let y: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let r = wilcoxon_signed_rank(&x, &y);
        assert_eq!(r.method, WilcoxonMethod::NormalApproximation);
        // x strictly dominates y: strongly significant.
        assert!(r.p_value < 1e-4);
        assert!(r.is_significant(0.1));
    }

    #[test]
    fn exact_and_approx_agree_on_moderate_n() {
        // Same data evaluated both ways should give p-values in the same
        // ballpark (the approximation is decent by n = 20).
        let x: Vec<f64> = (0..20).map(|i| (i as f64 * 0.37).sin() + 0.3).collect();
        let y: Vec<f64> = (0..20).map(|i| (i as f64 * 0.37).sin()).collect();
        let r = wilcoxon_signed_rank(&x, &y);
        assert_eq!(r.method, WilcoxonMethod::Exact);
        let approx = approx_p_value(
            &average_ranks(&x.iter().zip(&y).map(|(a, b)| (a - b).abs()).collect::<Vec<_>>()),
            r.statistic,
            20,
        );
        assert!((r.p_value - approx).abs() < 0.05);
    }

    #[test]
    fn zero_differences_are_dropped() {
        let x = [1.0, 5.0, 3.0, 3.0];
        let y = [1.0, 2.0, 3.0, 1.0];
        let r = wilcoxon_signed_rank(&x, &y);
        assert_eq!(r.n_effective, 2);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn unequal_lengths_panic() {
        let _ = wilcoxon_signed_rank(&[1.0], &[1.0, 2.0]);
    }
}
