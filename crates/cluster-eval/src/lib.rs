//! Clustering validity indices and statistical tests.
//!
//! Implements the four external validity indices used in the paper's
//! Table III — Clustering Accuracy ([`accuracy`], via an exact Hungarian
//! assignment), Adjusted Rand Index ([`adjusted_rand_index`]), Adjusted
//! Mutual Information ([`adjusted_mutual_information`], with the exact
//! expected-MI correction), and the Fowlkes–Mallows score
//! ([`fowlkes_mallows`]) — plus Normalized Mutual Information and the
//! two-tailed Wilcoxon signed-rank test of Table IV.
//!
//! All index functions take two label slices of equal length; labels are
//! arbitrary `usize` identifiers (no contiguity requirement).
//!
//! # Example
//!
//! ```
//! use cluster_eval::{accuracy, adjusted_rand_index};
//!
//! let truth = [0, 0, 1, 1];
//! let pred = [1, 1, 0, 0]; // same partition, permuted labels
//! assert_eq!(accuracy(&truth, &pred), 1.0);
//! assert_eq!(adjusted_rand_index(&truth, &pred), 1.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod accuracy;
mod contingency;
mod external;
mod hungarian;
mod information;
mod pair_counts;
mod ranks;
mod wilcoxon;

pub use accuracy::accuracy;
pub use contingency::ContingencyTable;
pub use external::{completeness, homogeneity, jaccard_index, purity, v_measure};
pub use hungarian::solve_assignment;
pub use information::{
    adjusted_mutual_information, labeling_entropy, mutual_information,
    normalized_mutual_information,
};
pub use pair_counts::{adjusted_rand_index, fowlkes_mallows, rand_index, PairCounts};
pub use ranks::average_ranks;
pub use wilcoxon::{wilcoxon_signed_rank, WilcoxonMethod, WilcoxonResult};

/// Standard normal cumulative distribution function.
///
/// Uses the Abramowitz–Stegun 7.1.26 rational approximation of `erf`
/// (absolute error < 1.5e-7), which is ample for significance testing.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(normal_cdf(8.0) > 0.999999);
    }
}
