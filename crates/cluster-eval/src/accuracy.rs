use crate::{solve_assignment, ContingencyTable};

/// Clustering Accuracy (ACC): the fraction of objects correctly clustered
/// under the *best* one-to-one mapping between predicted clusters and true
/// classes, found exactly with the Hungarian algorithm.
///
/// This is the first validity index of the paper's Table III; it ranges over
/// `[0, 1]`, higher is better. Works for any numbers of predicted/true
/// clusters (the contingency matrix is zero-padded to square).
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
///
/// # Example
///
/// ```
/// use cluster_eval::accuracy;
///
/// // Predicted labels are a permutation of the truth: perfect accuracy.
/// assert_eq!(accuracy(&[0, 0, 1, 1], &[7, 7, 3, 3]), 1.0);
/// // One object out of four strays.
/// assert_eq!(accuracy(&[0, 0, 1, 1], &[0, 0, 1, 0]), 0.75);
/// ```
pub fn accuracy(truth: &[usize], predicted: &[usize]) -> f64 {
    assert!(!truth.is_empty(), "labelings must be non-empty");
    let table = ContingencyTable::from_labels(truth, predicted);
    let size = table.n_rows().max(table.n_cols());
    // Maximize matched counts == minimize negated counts on the padded matrix.
    let mut cost = vec![vec![0.0f64; size]; size];
    for (i, j, c) in table.cells() {
        cost[i][j] = -(c as f64);
    }
    let (_, total) = solve_assignment(&cost);
    -total / table.n() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_match_scores_one() {
        assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 2]), 1.0);
    }

    #[test]
    fn label_permutation_is_invisible() {
        assert_eq!(accuracy(&[0, 0, 1, 1, 2, 2], &[2, 2, 0, 0, 1, 1]), 1.0);
    }

    #[test]
    fn single_predicted_cluster_scores_majority_fraction() {
        // All objects in one predicted cluster: best mapping matches the
        // majority class.
        let acc = accuracy(&[0, 0, 0, 1, 1], &[9, 9, 9, 9, 9]);
        assert!((acc - 0.6).abs() < 1e-12);
    }

    #[test]
    fn more_predicted_clusters_than_classes() {
        // Predicted splits class 0; only one of the two parts can map to it.
        let acc = accuracy(&[0, 0, 0, 0], &[0, 0, 1, 1]);
        assert!((acc - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fewer_predicted_clusters_than_classes() {
        let acc = accuracy(&[0, 1, 2, 3], &[0, 0, 1, 1]);
        assert!((acc - 0.5).abs() < 1e-12);
    }

    #[test]
    fn worst_case_interleaving() {
        // Truth alternates but prediction groups opposite pairs: Hungarian
        // still finds the best (here 0.5).
        let acc = accuracy(&[0, 1, 0, 1], &[0, 0, 1, 1]);
        assert!((acc - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_labelings_panic() {
        let _ = accuracy(&[], &[]);
    }
}
