/// Assigns 1-based ranks to `values`, averaging ranks over ties
/// (the "mid-rank" convention used by rank statistics).
///
/// # Example
///
/// ```
/// use cluster_eval::average_ranks;
///
/// let ranks = average_ranks(&[10.0, 20.0, 20.0, 30.0]);
/// assert_eq!(ranks, vec![1.0, 2.5, 2.5, 4.0]);
/// ```
pub fn average_ranks(values: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("values must not be NaN"));
    let mut ranks = vec![0.0; values.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Positions i..=j (0-based) share the average of ranks i+1..=j+1.
        let avg = (i + j + 2) as f64 / 2.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_values_get_integer_ranks() {
        assert_eq!(average_ranks(&[3.0, 1.0, 2.0]), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn all_tied_values_share_the_middle_rank() {
        assert_eq!(average_ranks(&[7.0, 7.0, 7.0]), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn empty_input_gives_empty_output() {
        assert!(average_ranks(&[]).is_empty());
    }

    #[test]
    fn rank_sum_is_preserved_under_ties() {
        let ranks = average_ranks(&[1.0, 2.0, 2.0, 2.0, 5.0, 5.0]);
        let sum: f64 = ranks.iter().sum();
        assert_eq!(sum, (1..=6).sum::<usize>() as f64);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_values_panic() {
        let _ = average_ranks(&[1.0, f64::NAN]);
    }
}
