//! Additional external validity indices beyond the four the paper reports:
//! purity, homogeneity / completeness / V-measure, and the pairwise Jaccard
//! index. Useful when comparing against the wider categorical-clustering
//! literature (COOLCAT and the entropy-based family report these).

use crate::{labeling_entropy, mutual_information, ContingencyTable, PairCounts};

/// Purity: each predicted cluster votes for its majority true class; the
/// fraction of objects covered by those votes. Ranges over `(0, 1]`; unlike
/// ACC it does not require a one-to-one cluster↔class mapping, so it is
/// inflated by over-clustering (n singletons score 1.0).
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
///
/// # Example
///
/// ```
/// use cluster_eval::purity;
///
/// assert_eq!(purity(&[0, 0, 1, 1], &[5, 5, 9, 9]), 1.0);
/// assert_eq!(purity(&[0, 0, 1, 1], &[5, 5, 5, 5]), 0.5);
/// ```
pub fn purity(truth: &[usize], predicted: &[usize]) -> f64 {
    assert!(!truth.is_empty(), "labelings must be non-empty");
    // Contingency rows = predicted clusters, cols = true classes.
    let table = ContingencyTable::from_labels(predicted, truth);
    let mut covered = 0u64;
    for i in 0..table.n_rows() {
        let best = (0..table.n_cols()).map(|j| table.count(i, j)).max().unwrap_or(0);
        covered += best;
    }
    covered as f64 / table.n() as f64
}

/// Homogeneity: 1 minus the conditional entropy of the true classes given
/// the predicted clusters, normalized by the class entropy. 1.0 when every
/// predicted cluster contains members of a single class.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn homogeneity(truth: &[usize], predicted: &[usize]) -> f64 {
    let h_truth = labeling_entropy(truth);
    if h_truth <= f64::EPSILON {
        return 1.0;
    }
    let mi = mutual_information(truth, predicted);
    (mi / h_truth).clamp(0.0, 1.0)
}

/// Completeness: the dual of [`homogeneity`] — 1.0 when all members of each
/// true class land in a single predicted cluster.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn completeness(truth: &[usize], predicted: &[usize]) -> f64 {
    homogeneity(predicted, truth)
}

/// V-measure: the harmonic mean of homogeneity and completeness
/// (Rosenberg & Hirschberg 2007). Ranges over `[0, 1]`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// use cluster_eval::v_measure;
///
/// assert!((v_measure(&[0, 0, 1, 1], &[1, 1, 0, 0]) - 1.0).abs() < 1e-9);
/// ```
pub fn v_measure(truth: &[usize], predicted: &[usize]) -> f64 {
    let h = homogeneity(truth, predicted);
    let c = completeness(truth, predicted);
    if h + c <= f64::EPSILON {
        return 0.0;
    }
    2.0 * h * c / (h + c)
}

/// Pairwise Jaccard index: `TP / (TP + FP + FN)` over object pairs — the
/// fraction of pairs clustered together in either partition that are
/// together in both.
///
/// # Panics
///
/// Panics if the slices have different lengths or hold fewer than 2 objects.
pub fn jaccard_index(truth: &[usize], predicted: &[usize]) -> f64 {
    let pc = PairCounts::from_labels(truth, predicted);
    assert!(pc.total() > 0, "need at least two objects");
    let denom = pc.together_both + pc.together_first + pc.together_second;
    if denom == 0 {
        // Neither partition groups anything: vacuous perfect agreement.
        return 1.0;
    }
    pc.together_both as f64 / denom as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn purity_of_singletons_is_one() {
        assert_eq!(purity(&[0, 0, 1, 1], &[0, 1, 2, 3]), 1.0);
    }

    #[test]
    fn purity_matches_majority_share() {
        // One cluster, classes split 3:1.
        let p = purity(&[0, 0, 0, 1], &[7, 7, 7, 7]);
        assert!((p - 0.75).abs() < 1e-12);
    }

    #[test]
    fn homogeneity_one_for_pure_subclusters() {
        // Prediction refines the truth: each cluster pure, but incomplete.
        let truth = [0, 0, 1, 1];
        let pred = [0, 1, 2, 3];
        assert!((homogeneity(&truth, &pred) - 1.0).abs() < 1e-9);
        assert!(completeness(&truth, &pred) < 1.0);
    }

    #[test]
    fn completeness_one_for_merged_classes() {
        let truth = [0, 0, 1, 1];
        let pred = [0, 0, 0, 0];
        assert!((completeness(&truth, &pred) - 1.0).abs() < 1e-9);
        assert_eq!(homogeneity(&truth, &pred), 0.0);
    }

    #[test]
    fn v_measure_balances_both() {
        let truth = [0, 0, 1, 1, 2, 2];
        let same = v_measure(&truth, &truth);
        assert!((same - 1.0).abs() < 1e-9);
        let refined = v_measure(&truth, &[0, 1, 2, 3, 4, 5]);
        assert!(refined < 1.0);
        assert!(refined > 0.0);
    }

    #[test]
    fn jaccard_bounds_and_perfection() {
        assert_eq!(jaccard_index(&[0, 0, 1, 1], &[1, 1, 0, 0]), 1.0);
        let j = jaccard_index(&[0, 0, 1, 1], &[0, 1, 0, 1]);
        assert!((0.0..1.0).contains(&j));
    }

    #[test]
    fn jaccard_vacuous_all_singletons() {
        assert_eq!(jaccard_index(&[0, 1, 2], &[0, 1, 2]), 1.0);
    }
}
