use crate::ContingencyTable;

/// Pairwise agreement counts between two partitions of the same objects.
///
/// All four pair-counting indices (Rand, ARI, FM, Jaccard, …) derive from
/// these totals. Counts use `u64`; they stay exact up to `n ≈ 6·10⁹`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairCounts {
    /// Pairs together in both partitions (true positives).
    pub together_both: u64,
    /// Pairs together in the first partition only.
    pub together_first: u64,
    /// Pairs together in the second partition only.
    pub together_second: u64,
    /// Pairs separated in both partitions.
    pub separate_both: u64,
}

fn choose2(x: u64) -> u64 {
    x * x.saturating_sub(1) / 2
}

impl PairCounts {
    /// Computes pair counts from two label slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn from_labels(a: &[usize], b: &[usize]) -> Self {
        Self::from_contingency(&ContingencyTable::from_labels(a, b))
    }

    /// Computes pair counts from a pre-built contingency table.
    pub fn from_contingency(table: &ContingencyTable) -> Self {
        let tp: u64 = table.cells().map(|(_, _, c)| choose2(c)).sum();
        let rows: u64 = table.row_sums().iter().map(|&c| choose2(c)).sum();
        let cols: u64 = table.col_sums().iter().map(|&c| choose2(c)).sum();
        let all = choose2(table.n());
        PairCounts {
            together_both: tp,
            together_first: rows - tp,
            together_second: cols - tp,
            // Grouped as (all + tp) - (rows + cols): rows + cols can exceed
            // `all` when both partitions are dominated by one big cluster,
            // so the naive left-to-right order underflows in u64.
            separate_both: (all + tp) - (rows + cols),
        }
    }

    /// Total number of object pairs.
    pub fn total(&self) -> u64 {
        self.together_both + self.together_first + self.together_second + self.separate_both
    }
}

/// The (unadjusted) Rand Index: fraction of object pairs on which the two
/// partitions agree. Ranges over `[0, 1]`.
///
/// # Panics
///
/// Panics if the slices have different lengths or fewer than 2 elements.
pub fn rand_index(a: &[usize], b: &[usize]) -> f64 {
    let pc = PairCounts::from_labels(a, b);
    assert!(pc.total() > 0, "need at least two objects");
    (pc.together_both + pc.separate_both) as f64 / pc.total() as f64
}

/// Adjusted Rand Index (ARI, Hubert & Arabie 1985): the Rand index corrected
/// for chance, ranging over `[-1, 1]` with 0 expected for random labelings.
///
/// This is the second validity index of the paper's Table III. Degenerate
/// inputs where both partitions are single-cluster (or both all-singletons)
/// score 1.0, matching scikit-learn's convention.
///
/// # Panics
///
/// Panics if the slices have different lengths or fewer than 2 elements.
///
/// # Example
///
/// ```
/// use cluster_eval::adjusted_rand_index;
///
/// let ari = adjusted_rand_index(&[0, 0, 1, 1], &[0, 0, 1, 2]);
/// assert!((ari - 4.0 / 7.0).abs() < 1e-12); // sklearn reports 0.5714…
/// ```
pub fn adjusted_rand_index(a: &[usize], b: &[usize]) -> f64 {
    let table = ContingencyTable::from_labels(a, b);
    assert!(table.n() >= 2, "need at least two objects");
    let tp: f64 = table.cells().map(|(_, _, c)| choose2(c) as f64).sum();
    let rows: f64 = table.row_sums().iter().map(|&c| choose2(c) as f64).sum();
    let cols: f64 = table.col_sums().iter().map(|&c| choose2(c) as f64).sum();
    let all = choose2(table.n()) as f64;
    let expected = rows * cols / all;
    let max_index = 0.5 * (rows + cols);
    if (max_index - expected).abs() < f64::EPSILON {
        // Both partitions trivial (all-one-cluster or all-singletons).
        return 1.0;
    }
    (tp - expected) / (max_index - expected)
}

/// Fowlkes–Mallows score: the geometric mean of pairwise precision and
/// recall, ranging over `[0, 1]`.
///
/// This is the fourth validity index of the paper's Table III.
///
/// # Panics
///
/// Panics if the slices have different lengths or fewer than 2 elements.
///
/// # Example
///
/// ```
/// use cluster_eval::fowlkes_mallows;
///
/// assert_eq!(fowlkes_mallows(&[0, 0, 1, 1], &[1, 1, 0, 0]), 1.0);
/// assert_eq!(fowlkes_mallows(&[0, 0, 0, 0], &[0, 1, 2, 3]), 0.0);
/// ```
pub fn fowlkes_mallows(a: &[usize], b: &[usize]) -> f64 {
    let pc = PairCounts::from_labels(a, b);
    assert!(pc.total() > 0, "need at least two objects");
    let tp = pc.together_both as f64;
    let precision_denom = (pc.together_both + pc.together_second) as f64;
    let recall_denom = (pc.together_both + pc.together_first) as f64;
    if precision_denom == 0.0 || recall_denom == 0.0 {
        return 0.0;
    }
    tp / (precision_denom * recall_denom).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_counts_partition_all_pairs() {
        let pc = PairCounts::from_labels(&[0, 0, 1, 1, 2], &[0, 1, 1, 1, 2]);
        assert_eq!(pc.total(), choose2(5));
    }

    #[test]
    fn identical_partitions_have_no_disagreement() {
        let pc = PairCounts::from_labels(&[0, 0, 1], &[5, 5, 6]);
        assert_eq!(pc.together_first, 0);
        assert_eq!(pc.together_second, 0);
    }

    #[test]
    fn rand_index_of_identical_is_one() {
        assert_eq!(rand_index(&[0, 1, 0, 1], &[1, 0, 1, 0]), 1.0);
    }

    #[test]
    fn ari_matches_sklearn_doc_example() {
        let ari = adjusted_rand_index(&[0, 0, 1, 1], &[0, 0, 1, 2]);
        assert!((ari - 0.5714285714285714).abs() < 1e-12);
    }

    #[test]
    fn ari_of_random_labels_is_near_zero() {
        // Fixed pseudo-random labels; expectation of ARI under independence is 0.
        let a: Vec<usize> = (0..2000).map(|i| (i * 2654435761usize) % 7 % 3).collect();
        let b: Vec<usize> = (0..2000).map(|i| (i * 40503usize + 17) % 11 % 3).collect();
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari.abs() < 0.05, "ari={ari}");
    }

    #[test]
    fn ari_degenerate_single_cluster_both() {
        assert_eq!(adjusted_rand_index(&[0, 0, 0], &[1, 1, 1]), 1.0);
    }

    #[test]
    fn ari_can_be_negative() {
        // Systematically opposed partitions score below chance.
        let a = [0, 0, 1, 1];
        let b = [0, 1, 0, 1];
        assert!(adjusted_rand_index(&a, &b) < 0.0);
    }

    #[test]
    fn fm_matches_sklearn_doc_examples() {
        assert_eq!(fowlkes_mallows(&[0, 0, 1, 1], &[0, 0, 1, 1]), 1.0);
        assert_eq!(fowlkes_mallows(&[0, 0, 1, 1], &[1, 1, 0, 0]), 1.0);
        assert_eq!(fowlkes_mallows(&[0, 0, 0, 0], &[0, 1, 2, 3]), 0.0);
    }

    #[test]
    fn fm_intermediate_value() {
        // truth pairs together: (0,1),(2,3); pred pairs together: (0,1),(1,2)? --
        // pred = [0,0,0,1]: together pairs {01,02,12}. TP = |{01}| = 1.
        // precision = 1/3, recall = 1/2, FM = 1/sqrt(6).
        let fm = fowlkes_mallows(&[0, 0, 1, 1], &[0, 0, 0, 1]);
        assert!((fm - 1.0 / 6.0f64.sqrt()).abs() < 1e-12);
    }
}
