use std::collections::HashMap;

/// A contingency table between two labelings of the same objects: entry
/// `(i, j)` counts objects with label `i` in the first labeling and `j` in
/// the second.
///
/// # Example
///
/// ```
/// use cluster_eval::ContingencyTable;
///
/// let table = ContingencyTable::from_labels(&[0, 0, 1], &[5, 5, 5]);
/// assert_eq!(table.n(), 3);
/// assert_eq!(table.n_rows(), 2);
/// assert_eq!(table.n_cols(), 1);
/// assert_eq!(table.count(0, 0), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContingencyTable {
    counts: Vec<Vec<u64>>,
    row_sums: Vec<u64>,
    col_sums: Vec<u64>,
    n: u64,
}

impl ContingencyTable {
    /// Builds the table from two label slices.
    ///
    /// Labels are arbitrary identifiers; they are densified internally in
    /// first-appearance order.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn from_labels(a: &[usize], b: &[usize]) -> Self {
        assert_eq!(a.len(), b.len(), "labelings must cover the same objects");
        let mut a_ids: HashMap<usize, usize> = HashMap::new();
        let mut b_ids: HashMap<usize, usize> = HashMap::new();
        let mut cells: HashMap<(usize, usize), u64> = HashMap::new();
        for (&la, &lb) in a.iter().zip(b) {
            let next_a = a_ids.len();
            let i = *a_ids.entry(la).or_insert(next_a);
            let next_b = b_ids.len();
            let j = *b_ids.entry(lb).or_insert(next_b);
            *cells.entry((i, j)).or_insert(0) += 1;
        }
        let mut counts = vec![vec![0u64; b_ids.len()]; a_ids.len()];
        for ((i, j), c) in cells {
            counts[i][j] = c;
        }
        let row_sums: Vec<u64> = counts.iter().map(|row| row.iter().sum()).collect();
        let mut col_sums = vec![0u64; b_ids.len()];
        for row in &counts {
            for (j, &c) in row.iter().enumerate() {
                col_sums[j] += c;
            }
        }
        let n = a.len() as u64;
        ContingencyTable { counts, row_sums, col_sums, n }
    }

    /// Total number of objects.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Number of distinct labels in the first labeling.
    pub fn n_rows(&self) -> usize {
        self.counts.len()
    }

    /// Number of distinct labels in the second labeling.
    pub fn n_cols(&self) -> usize {
        self.col_sums.len()
    }

    /// Joint count for densified labels `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn count(&self, i: usize, j: usize) -> u64 {
        self.counts[i][j]
    }

    /// Marginal counts of the first labeling.
    pub fn row_sums(&self) -> &[u64] {
        &self.row_sums
    }

    /// Marginal counts of the second labeling.
    pub fn col_sums(&self) -> &[u64] {
        &self.col_sums
    }

    /// Iterates over all non-zero cells as `(i, j, count)`.
    pub fn cells(&self) -> impl Iterator<Item = (usize, usize, u64)> + '_ {
        self.counts.iter().enumerate().flat_map(|(i, row)| {
            row.iter().enumerate().filter(|(_, &c)| c > 0).map(move |(j, &c)| (i, j, c))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_marginals() {
        let t = ContingencyTable::from_labels(&[0, 0, 1, 1, 1], &[0, 1, 1, 1, 1]);
        assert_eq!(t.row_sums(), &[2, 3]);
        assert_eq!(t.col_sums(), &[1, 4]);
        assert_eq!(t.count(1, 1), 3);
        assert_eq!(t.n(), 5);
    }

    #[test]
    fn labels_may_be_sparse_identifiers() {
        let t = ContingencyTable::from_labels(&[100, 7, 100], &[9, 9, 2]);
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.count(0, 0), 1); // (100, 9)
        assert_eq!(t.count(0, 1), 1); // (100, 2)
    }

    #[test]
    fn cells_skips_zeros() {
        let t = ContingencyTable::from_labels(&[0, 1], &[0, 1]);
        let cells: Vec<_> = t.cells().collect();
        assert_eq!(cells.len(), 2);
    }

    #[test]
    #[should_panic(expected = "same objects")]
    fn mismatched_lengths_panic() {
        let _ = ContingencyTable::from_labels(&[0], &[0, 1]);
    }
}
