use crate::ContingencyTable;

/// Shannon entropy (nats) of a labeling's cluster-size distribution.
pub fn labeling_entropy(labels: &[usize]) -> f64 {
    let table = ContingencyTable::from_labels(labels, labels);
    entropy_of_counts(table.row_sums(), table.n())
}

fn entropy_of_counts(counts: &[u64], n: u64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n as f64;
            -p * p.ln()
        })
        .sum()
}

/// Mutual information (nats) between two labelings.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mutual_information(a: &[usize], b: &[usize]) -> f64 {
    mi_of(&ContingencyTable::from_labels(a, b))
}

fn mi_of(table: &ContingencyTable) -> f64 {
    let n = table.n() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let mut mi = 0.0;
    for (i, j, c) in table.cells() {
        let p_ij = c as f64 / n;
        let p_i = table.row_sums()[i] as f64 / n;
        let p_j = table.col_sums()[j] as f64 / n;
        mi += p_ij * (p_ij / (p_i * p_j)).ln();
    }
    mi.max(0.0)
}

/// Normalized Mutual Information with the arithmetic-mean normalizer
/// (scikit-learn's default): `MI / ((H(a) + H(b)) / 2)`, in `[0, 1]`.
///
/// Degenerate inputs where both labelings are single-cluster score 1.0.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn normalized_mutual_information(a: &[usize], b: &[usize]) -> f64 {
    let table = ContingencyTable::from_labels(a, b);
    let h_a = entropy_of_counts(table.row_sums(), table.n());
    let h_b = entropy_of_counts(table.col_sums(), table.n());
    if h_a <= f64::EPSILON && h_b <= f64::EPSILON {
        return 1.0;
    }
    let denom = 0.5 * (h_a + h_b);
    if denom <= f64::EPSILON {
        return 0.0;
    }
    (mi_of(&table) / denom).clamp(0.0, 1.0)
}

/// Adjusted Mutual Information (AMI, Vinh et al. 2010) with the exact
/// expected-MI correction and the arithmetic-mean normalizer, matching
/// scikit-learn's `adjusted_mutual_info_score`.
///
/// This is the third validity index of the paper's Table III. Ranges over
/// roughly `[-1, 1]`; 0 expected for random labelings, 1 for identical
/// partitions.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// use cluster_eval::adjusted_mutual_information;
///
/// let ami = adjusted_mutual_information(&[0, 0, 1, 1], &[0, 0, 1, 2]);
/// assert!((ami - 4.0 / 7.0).abs() < 1e-12); // exact EMI = (2/3)·ln 2
/// ```
pub fn adjusted_mutual_information(a: &[usize], b: &[usize]) -> f64 {
    let table = ContingencyTable::from_labels(a, b);
    let h_a = entropy_of_counts(table.row_sums(), table.n());
    let h_b = entropy_of_counts(table.col_sums(), table.n());
    if h_a <= f64::EPSILON && h_b <= f64::EPSILON {
        // Both single-cluster: perfect agreement by convention.
        return 1.0;
    }
    let mi = mi_of(&table);
    let emi = expected_mutual_information(&table);
    let normalizer = 0.5 * (h_a + h_b);
    let denom = normalizer - emi;
    if denom.abs() < f64::EPSILON {
        // Avoid 0/0; fall back to the sign convention used by sklearn.
        return if (mi - emi).abs() < f64::EPSILON { 1.0 } else { 0.0 };
    }
    (mi - emi) / denom
}

/// Exact expected mutual information under the permutation (hypergeometric)
/// model of Vinh et al. (2010).
fn expected_mutual_information(table: &ContingencyTable) -> f64 {
    let n = table.n();
    if n == 0 {
        return 0.0;
    }
    let lnf = LnFactorial::up_to(n as usize);
    let nf = n as f64;
    let mut emi = 0.0;
    for &a in table.row_sums() {
        for &b in table.col_sums() {
            if a == 0 || b == 0 {
                continue;
            }
            let start = 1.max((a + b).saturating_sub(n));
            let end = a.min(b);
            for nij in start..=end {
                let nij_f = nij as f64;
                let term = nij_f / nf * ((nf * nij_f) / (a as f64 * b as f64)).ln();
                if term == 0.0 {
                    continue;
                }
                let ln_coef = lnf.get(a) + lnf.get(b) + lnf.get(n - a) + lnf.get(n - b)
                    - lnf.get(n)
                    - lnf.get(nij)
                    - lnf.get(a - nij)
                    - lnf.get(b - nij)
                    // nij >= a + b - n guarantees this stays non-negative;
                    // grouping as (n + nij) - (a + b) avoids u64 underflow.
                    - lnf.get((n + nij) - (a + b));
                emi += term * ln_coef.exp();
            }
        }
    }
    emi
}

/// Table of `ln(k!)` for `k = 0..=n`.
struct LnFactorial(Vec<f64>);

impl LnFactorial {
    fn up_to(n: usize) -> Self {
        let mut t = Vec::with_capacity(n + 1);
        t.push(0.0);
        for k in 1..=n {
            t.push(t[k - 1] + (k as f64).ln());
        }
        LnFactorial(t)
    }

    fn get(&self, k: u64) -> f64 {
        self.0[k as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_of_uniform_labeling() {
        let h = labeling_entropy(&[0, 1, 2, 3]);
        assert!((h - (4.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_constant_labeling_is_zero() {
        assert_eq!(labeling_entropy(&[5, 5, 5]), 0.0);
    }

    #[test]
    fn mi_of_identical_labelings_equals_entropy() {
        let labels = [0, 0, 1, 1, 2];
        let mi = mutual_information(&labels, &labels);
        assert!((mi - labeling_entropy(&labels)).abs() < 1e-12);
    }

    #[test]
    fn nmi_is_permutation_invariant() {
        let a = [0, 0, 1, 1, 2, 2];
        let b = [2, 2, 0, 0, 1, 1];
        assert!((normalized_mutual_information(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ami_matches_hand_computed_example() {
        // For truth [0,0,1,1] vs pred [0,0,1,2] the exact EMI enumerates to
        // (2/3)·ln 2 (verified below by brute force), giving AMI = 4/7.
        let ami = adjusted_mutual_information(&[0, 0, 1, 1], &[0, 0, 1, 2]);
        assert!((ami - 4.0 / 7.0).abs() < 1e-12, "ami={ami}");
    }

    #[test]
    fn emi_matches_brute_force_permutation_average() {
        // Average MI over all distinct permutations of the second labeling
        // must equal the hypergeometric-model EMI.
        let a = [0usize, 0, 1, 1];
        let b = [0usize, 0, 1, 2];
        let mut perm = [0usize, 1, 2, 3];
        let mut total = 0.0;
        let mut count = 0usize;
        // Heap's algorithm, iterative enumeration of 4! permutations.
        let mut c = [0usize; 4];
        let mut eval = |perm: &[usize; 4]| {
            let shuffled: Vec<usize> = perm.iter().map(|&i| b[i]).collect();
            total += mutual_information(&a, &shuffled);
            count += 1;
        };
        eval(&perm);
        let mut i = 0;
        while i < 4 {
            if c[i] < i {
                if i % 2 == 0 {
                    perm.swap(0, i);
                } else {
                    perm.swap(c[i], i);
                }
                eval(&perm);
                c[i] += 1;
                i = 0;
            } else {
                c[i] = 0;
                i += 1;
            }
        }
        let brute = total / count as f64;
        let table = ContingencyTable::from_labels(&a, &b);
        let emi = expected_mutual_information(&table);
        assert!((brute - emi).abs() < 1e-12, "brute={brute} emi={emi}");
        assert!((emi - 2.0 / 3.0 * (2.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn ami_of_identical_partitions_is_one() {
        let labels = [0, 0, 1, 1, 2, 2, 2];
        assert!((adjusted_mutual_information(&labels, &labels) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ami_of_random_labelings_is_near_zero() {
        let a: Vec<usize> = (0..3000).map(|i| (i * 2654435761usize) % 5).collect();
        let b: Vec<usize> = (0..3000).map(|i| (i * 40503usize + 7) % 4).collect();
        let ami = adjusted_mutual_information(&a, &b);
        assert!(ami.abs() < 0.02, "ami={ami}");
    }

    #[test]
    fn ami_degenerate_single_clusters() {
        assert_eq!(adjusted_mutual_information(&[0, 0, 0], &[1, 1, 1]), 1.0);
    }

    #[test]
    fn ami_handles_marginals_exceeding_n() {
        // Regression: with a=3, b=4, n=4 the EMI inner term (n−a−b+nij) must
        // not underflow in u64 arithmetic.
        let ami = adjusted_mutual_information(&[0, 0, 0, 1], &[0, 0, 0, 0]);
        assert!(ami.is_finite());
    }

    #[test]
    fn nmi_degenerate_single_vs_split() {
        // One side constant, the other split: zero information in common.
        let v = normalized_mutual_information(&[0, 0, 0, 0], &[0, 1, 2, 3]);
        assert_eq!(v, 0.0);
    }

    #[test]
    fn ln_factorial_table() {
        let t = LnFactorial::up_to(10);
        assert_eq!(t.get(0), 0.0);
        assert!((t.get(5) - (120.0f64).ln()).abs() < 1e-12);
        assert!((t.get(10) - (3628800.0f64).ln()).abs() < 1e-9);
    }
}
