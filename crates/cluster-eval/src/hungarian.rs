/// Solves the square minimum-cost assignment problem exactly in `O(n³)`
/// (Kuhn–Munkres with row/column potentials).
///
/// `cost` must be a square matrix. Returns `(assignment, total_cost)` where
/// `assignment[i]` is the column assigned to row `i`.
///
/// Clustering accuracy (Table III's ACC) needs the *maximum*-weight matching
/// between predicted clusters and true classes; callers negate the weight
/// matrix to use this minimizer.
///
/// # Panics
///
/// Panics if `cost` is empty or not square.
///
/// # Example
///
/// ```
/// use cluster_eval::solve_assignment;
///
/// let cost = vec![
///     vec![4.0, 1.0, 3.0],
///     vec![2.0, 0.0, 5.0],
///     vec![3.0, 2.0, 2.0],
/// ];
/// let (assignment, total) = solve_assignment(&cost);
/// assert_eq!(assignment, vec![1, 0, 2]);
/// assert_eq!(total, 5.0);
/// ```
pub fn solve_assignment(cost: &[Vec<f64>]) -> (Vec<usize>, f64) {
    let n = cost.len();
    assert!(n > 0, "cost matrix must be non-empty");
    assert!(cost.iter().all(|row| row.len() == n), "cost matrix must be square");

    // 1-based arrays; p[j] = row currently assigned to column j (0 = none).
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut p = vec![0usize; n + 1];
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=n {
                if !used[j] {
                    let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![0usize; n];
    for j in 1..=n {
        if p[j] > 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    let total = (0..n).map(|i| cost[i][assignment[i]]).sum();
    (assignment, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(cost: &[Vec<f64>]) -> f64 {
        fn permute(cost: &[Vec<f64>], used: &mut Vec<bool>, row: usize, acc: f64, best: &mut f64) {
            let n = cost.len();
            if row == n {
                if acc < *best {
                    *best = acc;
                }
                return;
            }
            for col in 0..n {
                if !used[col] {
                    used[col] = true;
                    permute(cost, used, row + 1, acc + cost[row][col], best);
                    used[col] = false;
                }
            }
        }
        let mut best = f64::INFINITY;
        permute(cost, &mut vec![false; cost.len()], 0, 0.0, &mut best);
        best
    }

    #[test]
    fn trivial_1x1() {
        let (a, t) = solve_assignment(&[vec![7.0]]);
        assert_eq!(a, vec![0]);
        assert_eq!(t, 7.0);
    }

    #[test]
    fn identity_is_optimal_on_diagonal_costs() {
        let cost = vec![vec![0.0, 9.0], vec![9.0, 0.0]];
        let (a, t) = solve_assignment(&cost);
        assert_eq!(a, vec![0, 1]);
        assert_eq!(t, 0.0);
    }

    #[test]
    fn assignment_is_a_permutation() {
        let cost: Vec<Vec<f64>> =
            (0..6).map(|i| (0..6).map(|j| ((i * 7 + j * 13) % 10) as f64).collect()).collect();
        let (a, _) = solve_assignment(&cost);
        let mut seen = a.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn matches_brute_force_on_small_random_matrices() {
        // Deterministic pseudo-random costs; exhaustive check up to 5x5.
        let mut state = 12345u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 100) as f64 / 10.0
        };
        for n in 1..=5 {
            for _ in 0..20 {
                let cost: Vec<Vec<f64>> =
                    (0..n).map(|_| (0..n).map(|_| next()).collect()).collect();
                let (_, t) = solve_assignment(&cost);
                let expected = brute_force(&cost);
                assert!((t - expected).abs() < 1e-9, "n={n}: {t} vs {expected}");
            }
        }
    }

    #[test]
    fn handles_negative_costs() {
        let cost = vec![vec![-5.0, 0.0], vec![0.0, -5.0]];
        let (a, t) = solve_assignment(&cost);
        assert_eq!(a, vec![0, 1]);
        assert_eq!(t, -10.0);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_non_square() {
        let _ = solve_assignment(&[vec![1.0, 2.0]]);
    }
}
