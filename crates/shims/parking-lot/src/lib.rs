//! Offline stand-in for `parking_lot`: a non-poisoning `Mutex` facade over
//! `std::sync::Mutex` (a poisoned lock is recovered transparently, matching
//! parking_lot's no-poisoning semantics).

/// Mutual exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates the lock.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(0u64);
        *m.lock() += 41;
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = &m;
                s.spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 400);
    }
}
