//! Offline stand-in for `rand_chacha`: a real ChaCha stream cipher RNG with
//! 8 rounds. Deterministic per seed; not bit-compatible with crates.io
//! `rand_chacha` (seed expansion differs), which is fine because the
//! workspace's determinism tests assert self-consistency, not golden values.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, seeded from a `u64`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Input block: 4 constant words, 8 key words, 2 counter words,
    /// 2 stream words.
    state: [u32; 16],
    /// Current keystream block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 forces a refill.
    idx: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round = column round + diagonal round; 4 double
            // rounds = ChaCha8.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.buf.iter_mut().zip(working.iter().zip(&self.state)) {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12–13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the 64-bit seed into a 256-bit key with SplitMix64, the
        // same scheme rand::SeedableRng::seed_from_u64 documents.
        let mut sm = seed;
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for i in 0..4 {
            let word = splitmix64(&mut sm);
            state[4 + 2 * i] = word as u32;
            state[5 + 2 * i] = (word >> 32) as u32;
        }
        ChaCha8Rng { state, buf: [0; 16], idx: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let word = self.buf[self.idx];
        self.idx += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should diverge, {same}/64 collisions");
    }

    #[test]
    fn output_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..1000).map(|_| rng.next_u32().count_ones()).sum();
        // 32 000 bits, expect ~16 000 set.
        assert!((14_500..17_500).contains(&ones), "ones={ones}");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..10 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
