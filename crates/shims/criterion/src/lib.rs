//! Offline stand-in for the `criterion` benchmarking API used by this
//! workspace's `benches/` (which are built with `harness = false`).
//!
//! Differences from real criterion:
//!
//! * results are printed to stdout as `group/bench  median ...` lines
//!   instead of HTML reports under `target/criterion`;
//! * each benchmark runs `sample_size` samples, with per-sample iteration
//!   counts auto-calibrated so a sample lasts at least ~20 ms (fast kernels
//!   are batched, slow fits run once per sample);
//! * an optional positional CLI argument filters benchmarks by substring
//!   (`cargo bench --bench components -- similarity`), and harness flags
//!   such as `--bench` are ignored.

use std::time::{Duration, Instant};

/// Minimum duration one measured sample should take; faster closures are
/// batched until they do.
const TARGET_SAMPLE: Duration = Duration::from_millis(20);

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo passes harness flags (e.g. `--bench`); the first non-flag
        // argument, if any, is a substring filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { default_sample_size: 10, filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            throughput: None,
            parent: self,
        }
    }

    /// Runs one stand-alone benchmark (outside any group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        let filter = self.filter.clone();
        run_benchmark(id, self.default_sample_size, None, &filter, f);
    }
}

/// Throughput annotation: turns per-iteration time into a rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements (e.g. rows) processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{parameter}", function_name.into()))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// A group of benchmarks sharing a name prefix and sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    #[allow(dead_code)]
    parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        let full = format!("{}/{id}", self.name);
        let filter = self.parent.filter.clone();
        run_benchmark(&full, self.sample_size, self.throughput, &filter, f);
    }

    /// Benchmarks a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let full = format!("{}/{}", self.name, id.0);
        let filter = self.parent.filter.clone();
        run_benchmark(&full, self.sample_size, self.throughput, &filter, |b| f(b, input));
    }

    /// Ends the group (reporting happens eagerly per benchmark).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the payload.
pub struct Bencher {
    sample_size: usize,
    /// Median per-iteration nanoseconds, filled by `iter`.
    median_nanos: f64,
    mean_nanos: f64,
}

impl Bencher {
    /// Measures `f`: calibrates a batch size, takes `sample_size` samples,
    /// and records median/mean per-iteration time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up + calibration: time single calls until TARGET_SAMPLE is
        // spent, deriving the per-sample batch size.
        let calib_start = Instant::now();
        let mut calib_iters = 0u64;
        while calib_start.elapsed() < TARGET_SAMPLE && calib_iters < 1_000_000 {
            std::hint::black_box(f());
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters.max(1) as f64;
        let batch = ((TARGET_SAMPLE.as_secs_f64() / per_iter.max(1e-9)).ceil() as u64).max(1);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            samples.push(start.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mid = samples.len() / 2;
        self.median_nanos = if samples.len() % 2 == 1 {
            samples[mid]
        } else {
            (samples[mid - 1] + samples[mid]) / 2.0
        };
        self.mean_nanos = samples.iter().sum::<f64>() / samples.len() as f64;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    filter: &Option<String>,
    mut f: F,
) {
    if let Some(pat) = filter {
        if !id.contains(pat.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher { sample_size, median_nanos: 0.0, mean_nanos: 0.0 };
    f(&mut bencher);
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => {
            format!("  {:>12.0} elem/s", n as f64 * 1e9 / bencher.median_nanos)
        }
        Throughput::Bytes(n) => format!("  {:>12.0} B/s", n as f64 * 1e9 / bencher.median_nanos),
    });
    println!(
        "{id:<48} median {:>12}  mean {:>12}{}",
        format_nanos(bencher.median_nanos),
        format_nanos(bencher.mean_nanos),
        rate.unwrap_or_default()
    );
}

fn format_nanos(nanos: f64) -> String {
    if nanos >= 1e9 {
        format!("{:.3} s", nanos / 1e9)
    } else if nanos >= 1e6 {
        format!("{:.3} ms", nanos / 1e6)
    } else if nanos >= 1e3 {
        format!("{:.3} us", nanos / 1e3)
    } else {
        format!("{nanos:.1} ns")
    }
}

/// Re-export so call sites can use `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group function running the listed targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { sample_size: 3, median_nanos: 0.0, mean_nanos: 0.0 };
        b.iter(|| std::hint::black_box(3u64.pow(7)));
        assert!(b.median_nanos > 0.0);
        assert!(b.mean_nanos > 0.0);
    }

    #[test]
    fn format_nanos_scales_units() {
        assert!(format_nanos(12.0).ends_with("ns"));
        assert!(format_nanos(12_000.0).ends_with("us"));
        assert!(format_nanos(12_000_000.0).ends_with("ms"));
        assert!(format_nanos(2e9).ends_with(" s"));
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from_parameter(3).0, "3");
    }
}
