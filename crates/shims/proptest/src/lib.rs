//! Offline stand-in for the `proptest` API surface used by this workspace:
//! the `proptest!` macro, `Strategy` with `prop_map`/`prop_flat_map`, range
//! and tuple strategies, `collection::vec`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from real proptest: no shrinking (a failing case panics with
//! its case index and derived seed so it can be replayed), and value
//! generation is deterministic per test name — every run explores the same
//! case sequence, which keeps CI stable.

pub mod test_runner {
    //! Configuration and the per-test RNG.

    /// Run configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Sets the number of cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a test case did not complete normally.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` — skip, don't fail.
        Reject(String),
        /// The case failed an assertion (asserts panic instead in this shim,
        /// so this variant mostly documents intent).
        Fail(String),
    }

    /// Deterministic 64-bit generator (SplitMix64) used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "bound must be positive");
            self.next_u64() % bound
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Stable seed derived from the test function name (FNV-1a).
    pub fn seed_from_name(name: &str) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        hash
    }
}

pub mod strategy {
    //! The `Strategy` trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }

        /// Boxes the strategy (API parity helper).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

    trait DynStrategy {
        type Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng), self.3.generate(rng))
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification: a fixed size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for vectors with the given element strategy and size.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + if span > 0 { rng.below(span) as usize } else { 0 };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface, mirroring `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property test (panics on failure, which the
/// shim's runner reports with the offending case index).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*); };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*); };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*); };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject(stringify!($cond).to_owned()));
        }
    };
}

/// Declares property tests: an optional `#![proptest_config(..)]` header
/// followed by `#[test] fn name(arg in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @config($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @config($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        @config($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat_param in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                let config: $crate::test_runner::ProptestConfig = $config;
                let base = $crate::test_runner::seed_from_name(stringify!($name));
                for case in 0..config.cases as u64 {
                    let seed = base.wrapping_add(case);
                    let mut runner_rng = $crate::test_runner::TestRng::new(seed);
                    $( let $arg = ($strategy).generate(&mut runner_rng); )+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body Ok(()) })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => continue,
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("property failed on case {case} (seed {seed}): {msg}");
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (0.0f64..1.0).generate(&mut rng);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let mut rng = TestRng::new(2);
        let s = crate::collection::vec(0u32..4, 1..20);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((1..20).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let mut rng = TestRng::new(3);
        let s = (2usize..5).prop_flat_map(|n| crate::collection::vec(0u32..3, n));
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_round_trips(x in 0u64..100, v in crate::collection::vec(0u32..5, 3)) {
            prop_assume!(x != 1);
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), 3);
        }
    }
}
