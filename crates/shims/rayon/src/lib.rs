//! Offline stand-in for the `rayon` API surface used by this workspace.
//!
//! Parallel iterators are materialized eagerly into a work list; `map` is
//! recorded lazily and executed on `collect`/`reduce`/`for_each` by chunking
//! the work list over `std::thread::scope` threads. Chunks are concatenated
//! in order, so results are identical to the sequential evaluation — which
//! is what lets `mcdc-core` assert parallel CAME produces bit-identical
//! labels.
//!
//! Thread count: `RAYON_NUM_THREADS` if set, else
//! `std::thread::available_parallelism()`.

use std::ops::Range;

pub mod prelude {
    //! Glob-import surface, mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelSlice};
}

/// Number of worker threads the shim will use.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Runs `f` over `items` on up to [`current_num_threads`] scoped threads,
/// preserving input order in the output.
fn par_map_vec<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let len = items.len();
    let threads = current_num_threads().min(len);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = len.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut iter = items.into_iter();
    loop {
        let chunk: Vec<T> = iter.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        let mut out = Vec::with_capacity(len);
        for handle in handles {
            out.extend(handle.join().expect("rayon-shim worker panicked"));
        }
        out
    })
}

/// An eager parallel iterator: the pending work list.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A parallel iterator with a pending `map` stage.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    /// Records a map stage, executed at the terminal operation.
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap { items: self.items, f }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        par_map_vec(self.items, f);
    }

    /// Collects the items (no pending map: already materialized).
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

impl<T, U, F> ParMap<T, F>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    /// Executes the map in parallel and collects in input order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        par_map_vec(self.items, self.f).into_iter().collect()
    }

    /// Executes the map in parallel, then folds the results left-to-right.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> U
    where
        ID: Fn() -> U,
        OP: Fn(U, U) -> U,
    {
        par_map_vec(self.items, self.f).into_iter().fold(identity(), op)
    }

    /// Executes the map in parallel and sums the results.
    pub fn sum<S: std::iter::Sum<U>>(self) -> S {
        par_map_vec(self.items, self.f).into_iter().sum()
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Builds the work list.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

impl IntoParallelIterator for Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter { items: self.collect() }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

/// Conversion into a borrowing parallel iterator (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type produced (a reference).
    type Item: Send;
    /// Builds the work list over `&self`.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

/// Parallel chunked traversal of slices.
pub trait ParallelSlice<T: Sync> {
    /// Splits into contiguous chunks of at most `chunk_size` items.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter { items: self.chunks(chunk_size).collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_covers_slice_in_order() {
        let data: Vec<u32> = (0..103).collect();
        let sums: Vec<u64> =
            data.par_chunks(10).map(|c| c.iter().map(|&x| x as u64).sum()).collect();
        assert_eq!(sums.len(), 11);
        assert_eq!(sums.iter().sum::<u64>(), (0..103u64).sum());
    }

    #[test]
    fn reduce_folds_all_items() {
        let total = (0..100usize).into_par_iter().map(|i| i as u64).reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 4950);
    }

    #[test]
    fn par_iter_borrows() {
        let v = vec![1u64, 2, 3];
        let s: u64 = v.par_iter().map(|&x| x).sum();
        assert_eq!(s, 6);
    }
}
