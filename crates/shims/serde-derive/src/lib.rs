//! No-op `Serialize` / `Deserialize` derive macros (offline serde shim).
//!
//! Nothing in this workspace serializes at runtime; the derives only need to
//! make `#[derive(Serialize, Deserialize)]` and `#[serde(...)]` helper
//! attributes compile. They therefore emit no code at all.

use proc_macro::TokenStream;

/// Accepts the input item (and any `#[serde(...)]` attributes) and emits
/// nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts the input item (and any `#[serde(...)]` attributes) and emits
/// nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
