//! Offline stand-in for the `rand` 0.8 API surface used by this workspace.
//!
//! The streams are deterministic per seed and stable across runs, but not
//! bit-compatible with crates.io `rand`; every determinism test in the
//! workspace asserts self-consistency rather than golden values.

/// Core random number generation: raw word output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling of a value from a range (the subset of
/// `rand::distributions::uniform` this workspace needs).
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Modulo reduction: bias is at most span / 2^64, far below
                // anything observable in this workspace's usage.
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t; // full-width range
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

/// Uniform `f64` in `[0, 1)` from the generator's top 53 bits.
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// High-level convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod seq {
    //! Sequence helpers (`SliceRandom`).

    use crate::RngCore;

    /// Random slice operations.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

pub mod distributions {
    //! Distribution sampling (`Distribution`, `WeightedIndex`).

    use core::borrow::Borrow;

    use crate::RngCore;

    /// Types that can produce samples of `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Error from constructing a [`WeightedIndex`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum WeightedError {
        /// No weights were provided.
        NoItem,
        /// A weight was negative or not finite.
        InvalidWeight,
        /// All weights are zero.
        AllWeightsZero,
    }

    impl core::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            let msg = match self {
                WeightedError::NoItem => "no weights provided",
                WeightedError::InvalidWeight => "invalid weight",
                WeightedError::AllWeightsZero => "all weights are zero",
            };
            f.write_str(msg)
        }
    }

    impl std::error::Error for WeightedError {}

    /// Samples indices `0..n` proportionally to a weight vector.
    #[derive(Debug, Clone, PartialEq)]
    pub struct WeightedIndex {
        cumulative: Vec<f64>,
        total: f64,
    }

    impl WeightedIndex {
        /// Builds the distribution from an iterator of weights.
        pub fn new<I>(weights: I) -> Result<WeightedIndex, WeightedError>
        where
            I: IntoIterator,
            I::Item: core::borrow::Borrow<f64>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w = *w.borrow();
                if !w.is_finite() || w < 0.0 {
                    return Err(WeightedError::InvalidWeight);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() {
                return Err(WeightedError::NoItem);
            }
            if total <= 0.0 {
                return Err(WeightedError::AllWeightsZero);
            }
            Ok(WeightedIndex { cumulative, total })
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            let u = crate::unit_f64(rng) * self.total;
            // First index whose cumulative weight exceeds the draw.
            match self.cumulative.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
                Ok(i) => (i + 1).min(self.cumulative.len() - 1),
                Err(i) => i.min(self.cumulative.len() - 1),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::seq::SliceRandom;
    use super::{Rng, RngCore};

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(3u32..9);
            assert!((3..9).contains(&v));
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = Counter(3);
        let dist = WeightedIndex::new([9.0, 1.0]).unwrap();
        let zeros = (0..2000).filter(|_| dist.sample(&mut rng) == 0).count();
        assert!(zeros > 1500, "zeros={zeros}");
    }

    #[test]
    fn weighted_index_rejects_bad_weights() {
        assert!(WeightedIndex::new(core::iter::empty::<f64>()).is_err());
        assert!(WeightedIndex::new([0.0, 0.0]).is_err());
        assert!(WeightedIndex::new([-1.0, 2.0]).is_err());
    }
}
