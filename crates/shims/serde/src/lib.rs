//! Offline `serde` facade: re-exports the no-op derive macros.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` (plus
//! `#[serde(skip)]` field attributes); no code path serializes at runtime,
//! so the derives expand to nothing. See `crates/shims/README.md`.

pub use serde_derive::{Deserialize, Serialize};
