//! Offline stand-in for the `crossbeam::thread` scoped-thread API, backed by
//! `std::thread::scope` (stabilized since Rust 1.63, which makes the real
//! crate's raison d'être moot for this workspace).

pub mod thread {
    //! Scoped threads.

    /// Handle passed to [`scope`] closures; mirrors `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope handle
        /// (crossbeam convention), enabling nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which spawned threads are joined before
    /// returning. Always `Ok` — a panicking child propagates the panic
    /// (crossbeam would return `Err`; all call sites `.expect()` anyway).
    #[allow(clippy::type_complexity)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let total = AtomicU64::new(0);
        thread::scope(|scope| {
            for i in 0..8u64 {
                let total = &total;
                scope.spawn(move |_| {
                    total.fetch_add(i, Ordering::SeqCst);
                });
            }
        })
        .expect("no panics");
        assert_eq!(total.load(Ordering::SeqCst), 28);
    }

    #[test]
    fn nested_spawn_through_handle() {
        let flag = AtomicU64::new(0);
        thread::scope(|scope| {
            let flag = &flag;
            scope.spawn(move |s| {
                s.spawn(move |_| {
                    flag.store(1, Ordering::SeqCst);
                });
            });
        })
        .expect("no panics");
        assert_eq!(flag.load(Ordering::SeqCst), 1);
    }
}
