//! MCDC — Multi-granular Competitive-learning Categorical Data Clustering.
//!
//! Facade crate re-exporting the whole workspace: the data substrate, the
//! MCDC pipeline (MGCPL + CAME), the baseline clusterers, the validity
//! indices, and the distributed-computing simulation.
//!
//! # Quickstart
//!
//! ```
//! use mcdc::core::Mcdc;
//! use mcdc::data::synth::GeneratorConfig;
//! use mcdc::eval::{accuracy, adjusted_rand_index};
//!
//! let data = GeneratorConfig::new("demo", 200, vec![4; 8], 3)
//!     .noise(0.05)
//!     .generate(7)
//!     .dataset;
//! let result = Mcdc::builder().seed(1).build().fit(data.table(), 3)?;
//! let acc = accuracy(data.labels(), result.labels());
//! assert!(acc > 0.9, "well-separated clusters should be recovered, acc={acc}");
//! let _ari = adjusted_rand_index(data.labels(), result.labels());
//! # Ok::<(), mcdc::core::McdcError>(())
//! ```

pub use categorical_data as data;
pub use cluster_eval as eval;
pub use mcdc_baselines as baselines;
pub use mcdc_core as core;
pub use mcdc_dist_sim as dist;

pub use categorical_data::{CategoricalTable, Dataset, FeatureDomain, Schema};
pub use mcdc_core::{Came, LabelingPlan, Mcdc, McdcError, Mgcpl, StreamingMcdc};
